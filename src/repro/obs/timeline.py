"""Timeline export: Chrome/Perfetto ``trace_event`` JSON and text tables.

Two consumers:

- ``chrome://tracing`` / https://ui.perfetto.dev — load the JSON written
  by :func:`write_chrome_trace` and scrub through a run cycle by cycle;
- terminals — :func:`invocation_table` renders the per-invocation
  cycle-attribution table (a finer-grained E3: where every cycle between
  consecutive DySER invocations went).

Clock mapping: the simulator's cycle domain is exported with **1 cycle =
1 microsecond** on its own trace process, so Perfetto's time axis reads
directly in cycles.  Host wall-clock events (compiler passes, engine job
lifecycle) land on a second process in real microseconds, rebased so the
earliest event sits at t=0.
"""

from __future__ import annotations

import json
import pathlib
from collections import defaultdict

from repro.obs.events import COUNTER, CYCLES, WALL, EventStream

#: Synthetic process ids for the two clock domains.
PID_SIM = 1
PID_HOST = 2

_PROCESS_NAMES = {
    PID_SIM: "simulation (1 us = 1 cycle)",
    PID_HOST: "host (wall clock)",
}


def _thread_ids(events) -> dict[tuple[int, str], int]:
    """Stable (pid, category) -> tid mapping, sorted for determinism."""
    keys = sorted({(PID_SIM if e.domain == CYCLES else PID_HOST,
                    e.category) for e in events})
    return {key: i + 1 for i, key in enumerate(keys)}


def to_chrome_trace(events: EventStream, metadata: dict | None = None) -> dict:
    """Render a stream as a Chrome ``trace_event`` JSON object (dict).

    Emits ``X`` (complete), ``i`` (instant) and ``C`` (counter) phases
    plus ``M`` metadata records naming processes and threads, which is
    the subset both ``chrome://tracing`` and Perfetto accept.
    """
    recorded = list(events)
    tids = _thread_ids(recorded)
    wall_base = min((e.ts for e in recorded if e.domain == WALL),
                    default=0.0)

    trace_events: list[dict] = []
    for pid, name in _PROCESS_NAMES.items():
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    for (pid, category), tid in tids.items():
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": category},
        })

    for event in recorded:
        pid = PID_SIM if event.domain == CYCLES else PID_HOST
        ts = event.ts if event.domain == CYCLES else event.ts - wall_base
        entry = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": ts,
            "pid": pid,
            "tid": tids[(pid, event.category)],
        }
        if event.phase == COUNTER:
            entry["args"] = {event.name: event.args.get("value", 0)}
        else:
            if event.phase == "X":
                entry["dur"] = event.dur
            if event.args:
                entry["args"] = dict(event.args)
        if event.phase == "i":
            entry["s"] = "t"  # thread-scoped instant
        trace_events.append(entry)

    doc = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = dict(metadata)
    if events.dropped:
        doc.setdefault("otherData", {})["dropped_events"] = events.dropped
    return doc


def write_chrome_trace(events: EventStream, path,
                       metadata: dict | None = None) -> pathlib.Path:
    """Write :func:`to_chrome_trace` output as JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(events, metadata)))
    return path


# ---------------------------------------------------------------------
# Per-invocation cycle attribution (the finer-grained E3)
# ---------------------------------------------------------------------


def invocation_rows(events: EventStream) -> list[dict]:
    """One dict per DySER invocation with attributed stall cycles.

    For each fabric invocation the window ``(previous fire, this fire]``
    is examined and every core stall event inside it is attributed to
    this invocation, keyed by cause.  ``gap`` is the full window length;
    unattributed gap cycles are issue/compute cycles.
    """
    invocations = sorted(
        (e for e in events if e.name == "invocation"),
        key=lambda e: (e.ts, e.args.get("index", 0)))
    stalls = sorted((e for e in events if e.category == "cpu.stall"),
                    key=lambda e: e.ts)

    rows: list[dict] = []
    cursor = 0
    prev_fire = 0.0
    for i, inv in enumerate(invocations):
        fire = inv.ts
        by_cause: dict[str, float] = defaultdict(float)
        while cursor < len(stalls) and stalls[cursor].ts <= fire:
            stall = stalls[cursor]
            if stall.ts > prev_fire or i == 0:
                by_cause[stall.name] += stall.dur
            cursor += 1
        rows.append({
            "invocation": i,
            "config": inv.args.get("config", 0),
            "fire": int(fire),
            "latency": int(inv.dur),
            "gap": int(fire - prev_fire) if i else int(fire),
            "stalls": dict(sorted(by_cause.items())),
        })
        prev_fire = fire
    return rows


def invocation_table(events: EventStream, limit: int | None = 40) -> str:
    """Plain-text per-invocation cycle-attribution table."""
    from repro.harness.report import format_table

    rows = invocation_rows(events)
    if not rows:
        return ("no DySER invocations recorded "
                "(scalar run, or tracing was off)")
    causes = sorted({name for row in rows for name in row["stalls"]})
    headers = ["inv", "cfg", "fire@", "lat", "gap", *causes]
    table_rows = []
    shown = rows if limit is None else rows[:limit]
    for row in shown:
        table_rows.append([
            row["invocation"], row["config"], row["fire"],
            row["latency"], row["gap"],
            *(int(row["stalls"].get(c, 0)) for c in causes),
        ])
    text = format_table(
        headers, table_rows,
        title=f"per-invocation cycle attribution "
              f"({len(rows)} invocations)")
    if limit is not None and len(rows) > limit:
        text += f"\n... ({len(rows) - limit} more invocations elided)"
    return text


def phase_table(events: EventStream) -> str:
    """Wall-clock phases (compiler passes, engine jobs) as a table."""
    from repro.harness.report import format_table

    spans = [e for e in events
             if e.domain == WALL and e.phase == "X"]
    if not spans:
        return "no host-side phases recorded"
    spans.sort(key=lambda e: e.ts)
    base = spans[0].ts
    rows = [
        [e.category, e.name, f"{(e.ts - base) / 1e3:.3f}",
         f"{e.dur / 1e3:.3f}",
         ", ".join(f"{k}={v}" for k, v in sorted(e.args.items()))]
        for e in spans
    ]
    return format_table(
        ["category", "phase", "start ms", "dur ms", "detail"], rows,
        title=f"host phases ({len(spans)} spans)")
