"""Structured event stream: ring-buffered spans and instants.

The observability substrate every instrumented subsystem writes into.
Design constraints, in priority order:

1. **Zero cost when disabled.**  Instrumented code never constructs an
   :class:`EventStream` unless tracing was requested; every emit site is
   guarded by an ``if events is not None`` check on a local, so a run
   with tracing off executes exactly the same work it did before the
   observability layer existed.
2. **Bounded memory when enabled.**  Events land in a ring buffer
   (``collections.deque(maxlen=...)``); once full, the oldest events are
   dropped and counted in :attr:`EventStream.dropped`.  A runaway
   workload can never exhaust memory through its trace.
3. **Two clock domains.**  Simulator events are timestamped in *cycles*
   (the scoreboard's issue cursor); host-side events (compiler passes,
   engine job lifecycle) are timestamped in *wall-clock microseconds*.
   Each event records its domain so the timeline exporter can place them
   on separate tracks instead of conflating the clocks.

The event model follows the Chrome ``trace_event`` phases we export to
(:mod:`repro.obs.timeline`): complete events (``X``, with a duration),
instant events (``i``), and counter samples (``C``).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Clock domains.
CYCLES = "cycles"
WALL = "wall"

#: Event phases (mirroring Chrome trace_event).
COMPLETE = "X"
INSTANT = "i"
COUNTER = "C"


@dataclass(frozen=True)
class TraceOptions:
    """What to record during a run.  The default records nothing.

    ``enabled=False`` is a hard off switch: no stream is allocated and
    every instrumented hot path sees ``events is None``.
    """

    enabled: bool = False
    #: Ring-buffer capacity (events); oldest events drop beyond this.
    capacity: int = 1_000_000
    #: Categories to record (empty tuple = record everything).  Category
    #: names are dotted prefixes: ``cpu``, ``cpu.stall``, ``dyser``,
    #: ``compiler``, ``engine``.
    categories: tuple = ()
    #: Also record one event per issued instruction (verbose; the
    #: per-instruction track is the single largest event source).
    instructions: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "categories",
                           tuple(str(c) for c in self.categories))
        object.__setattr__(self, "capacity", int(self.capacity))

    def stream(self) -> "EventStream | None":
        """The stream this configuration calls for (None when off)."""
        if not self.enabled:
            return None
        return EventStream(capacity=self.capacity,
                           categories=self.categories)

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "categories": list(self.categories),
            "instructions": self.instructions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceOptions":
        return cls(
            enabled=bool(data.get("enabled", False)),
            capacity=int(data.get("capacity", 1_000_000)),
            categories=tuple(data.get("categories", ())),
            instructions=bool(data.get("instructions", False)),
        )


@dataclass(frozen=True)
class Event:
    """One recorded event.

    ``ts``/``dur`` are in the units of ``domain`` (cycles or wall-clock
    microseconds).  ``args`` is a small dict of JSON-safe values.
    """

    name: str
    category: str
    phase: str
    ts: float
    dur: float = 0.0
    domain: str = CYCLES
    args: dict = field(default_factory=dict)


class EventStream:
    """Ring-buffered sink for structured events.

    Instrumented code holds a reference (or ``None``) and calls
    :meth:`complete` / :meth:`instant` / :meth:`counter` with explicit
    timestamps, or uses the :meth:`span` context manager for wall-clock
    phases.  The stream is append-only; export goes through
    :mod:`repro.obs.timeline`.
    """

    def __init__(self, capacity: int = 1_000_000,
                 categories: tuple = ()) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.categories = tuple(categories)
        self._events: deque[Event] = deque(maxlen=capacity)
        self.emitted = 0      # total events offered (including dropped)

    # -- predicates ----------------------------------------------------

    def wants(self, category: str) -> bool:
        """Is ``category`` recorded under the configured filter?"""
        if not self.categories:
            return True
        return any(category == c or category.startswith(c + ".")
                   for c in self.categories)

    @property
    def dropped(self) -> int:
        """Events lost to ring-buffer wraparound."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def events(self) -> list[Event]:
        return list(self._events)

    # -- emit ----------------------------------------------------------

    def _push(self, event: Event) -> None:
        self.emitted += 1
        self._events.append(event)

    def complete(self, name: str, category: str, ts: float, dur: float,
                 domain: str = CYCLES, **args) -> None:
        """A span with an explicit start and duration."""
        if not self.wants(category):
            return
        self._push(Event(name, category, COMPLETE, ts, dur, domain, args))

    def instant(self, name: str, category: str, ts: float,
                domain: str = CYCLES, **args) -> None:
        """A point event (no duration)."""
        if not self.wants(category):
            return
        self._push(Event(name, category, INSTANT, ts, 0.0, domain, args))

    def counter(self, name: str, category: str, ts: float, value: float,
                domain: str = CYCLES, **args) -> None:
        """A sampled counter value (renders as a track in Perfetto)."""
        if not self.wants(category):
            return
        self._push(Event(name, category, COUNTER, ts, 0.0, domain,
                         {"value": value, **args}))

    @contextmanager
    def span(self, name: str, category: str, **args):
        """Wall-clock span: times the enclosed block.

        Yields a mutable dict merged into the event's args on exit, so
        the body can attach results (IR sizes, counts) to the span::

            with events.span("optimize", "compiler") as info:
                func = optimize(func)
                info["ops"] = func.op_count()
        """
        extra: dict = {}
        start = time.perf_counter()
        try:
            yield extra
        finally:
            dur_us = (time.perf_counter() - start) * 1e6
            if self.wants(category):
                self._push(Event(name, category, COMPLETE,
                                 start * 1e6, dur_us, WALL,
                                 {**args, **extra}))

    # -- queries (used by the exporters and tests) ---------------------

    def by_category(self, category: str) -> list[Event]:
        return [e for e in self._events
                if e.category == category
                or e.category.startswith(category + ".")]

    def named(self, name: str) -> list[Event]:
        return [e for e in self._events if e.name == name]


@contextmanager
def maybe_span(events: "EventStream | None", name: str, category: str,
               **args):
    """``events.span(...)`` when tracing, otherwise a free no-op.

    The helper instrumented *cold* paths use (compiler passes, engine
    job lifecycle) so they need no ``if events is not None`` boilerplate.
    Hot paths (the core's issue loop) inline the guard instead.
    """
    if events is None:
        yield {}
        return
    with events.span(name, category, **args) as extra:
        yield extra
