"""Dataflow graph (DFG): the computation a DySER configuration implements.

A DFG is what the compiler's execute slice becomes and what ``dyser_init``
loads (after placement and routing turn it into a :class:`DyserConfig`).
Node inputs are *sources*: another node's output, a named input port, or a
compile-time constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.dyser.ops import FU_OP_INFO, FuOp


@dataclass(frozen=True)
class PortRef:
    """A DFG input wired to fabric input port ``port``."""

    port: int

    def __repr__(self) -> str:
        return f"P{self.port}"


@dataclass(frozen=True)
class ConstRef:
    """A DFG input wired to a configuration-time constant."""

    value: int | float

    def __repr__(self) -> str:
        return f"#{self.value!r}"


@dataclass(frozen=True)
class NodeRef:
    """A DFG input wired to another node's output."""

    node: int

    def __repr__(self) -> str:
        return f"n{self.node}"


Source = PortRef | ConstRef | NodeRef


@dataclass
class DfgNode:
    """One operation in the DFG."""

    id: int
    op: FuOp
    inputs: list[Source]

    def __post_init__(self) -> None:
        arity = FU_OP_INFO[self.op].arity
        if len(self.inputs) != arity:
            raise ConfigurationError(
                f"node {self.id} ({self.op.value}): expected {arity} "
                f"inputs, got {len(self.inputs)}",
                code="RPR201", node=self.id, op=self.op.value,
                arity=arity, got=len(self.inputs),
            )


class Dfg:
    """A dataflow graph with named input and output ports.

    Build with :meth:`add_node`; declare fabric outputs by mapping an
    output port number to a source with :meth:`set_output`.
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self.nodes: dict[int, DfgNode] = {}
        self.outputs: dict[int, Source] = {}
        self._next_id = 0

    # -- construction ------------------------------------------------------

    def add_node(self, op: FuOp, inputs: list[Source],
                 node_id: int | None = None) -> NodeRef:
        """Add a node; ``node_id`` pins an explicit id (deserialization)."""
        if node_id is None:
            node_id = self._next_id
        elif node_id in self.nodes:
            raise ConfigurationError(f"duplicate node id {node_id}",
                                     node=node_id)
        node = DfgNode(node_id, op, list(inputs))
        self.nodes[node.id] = node
        self._next_id = max(self._next_id, node_id + 1)
        return NodeRef(node.id)

    def set_output(self, port: int, source: Source) -> None:
        if port in self.outputs:
            raise ConfigurationError(f"output port {port} already driven",
                                     port=port)
        self.outputs[port] = source

    # -- queries -----------------------------------------------------------

    @property
    def input_ports(self) -> list[int]:
        """Sorted list of input port numbers referenced anywhere."""
        ports = set()
        for node in self.nodes.values():
            for src in node.inputs:
                if isinstance(src, PortRef):
                    ports.add(src.port)
        for src in self.outputs.values():
            if isinstance(src, PortRef):
                ports.add(src.port)
        return sorted(ports)

    @property
    def output_ports(self) -> list[int]:
        return sorted(self.outputs)

    def num_ops(self) -> int:
        return len(self.nodes)

    def topo_order(self) -> list[DfgNode]:
        """Nodes in topological order; raises on cycles.

        DySER configurations are acyclic by construction (loop-carried
        values round-trip through the core), so a cycle is a config bug.
        """
        indeg = {nid: 0 for nid in self.nodes}
        consumers: dict[int, list[int]] = {nid: [] for nid in self.nodes}
        for node in self.nodes.values():
            for src in node.inputs:
                if isinstance(src, NodeRef):
                    indeg[node.id] += 1
                    consumers[src.node].append(node.id)
        ready = sorted(nid for nid, d in indeg.items() if d == 0)
        order: list[DfgNode] = []
        while ready:
            nid = ready.pop()
            order.append(self.nodes[nid])
            for consumer in consumers[nid]:
                indeg[consumer] -= 1
                if indeg[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self.nodes):
            cyclic = sorted(nid for nid, d in indeg.items() if d > 0)
            raise ConfigurationError(
                f"{self.name}: DFG contains a cycle",
                code="RPR204", dfg=self.name, nodes=cyclic)
        return order

    def depth(self) -> int:
        """Longest op chain from any input to any output (in ops)."""
        level: dict[int, int] = {}
        for node in self.topo_order():
            producer_levels = [
                level[src.node] for src in node.inputs
                if isinstance(src, NodeRef)
            ]
            level[node.id] = 1 + max(producer_levels, default=0)
        return max(level.values(), default=0)

    def validate(self) -> None:
        """Structural checks: sources resolve, outputs exist, acyclic."""
        for node in self.nodes.values():
            for src in node.inputs:
                if isinstance(src, NodeRef) and src.node not in self.nodes:
                    raise ConfigurationError(
                        f"node {node.id} reads undefined node {src.node}",
                        code="RPR202", node=node.id, target=src.node,
                    )
        if not self.outputs:
            raise ConfigurationError(f"{self.name}: DFG has no outputs",
                                     code="RPR203", dfg=self.name)
        for port, src in self.outputs.items():
            if isinstance(src, NodeRef) and src.node not in self.nodes:
                raise ConfigurationError(
                    f"output port {port} reads undefined node {src.node}",
                    code="RPR202", port=port, target=src.node,
                )
        self.topo_order()

    def describe(self) -> str:
        lines = [f"dfg {self.name}:"]
        for node in self.topo_order():
            srcs = ", ".join(repr(s) for s in node.inputs)
            lines.append(f"  n{node.id} = {node.op.value}({srcs})")
        for port in self.output_ports:
            lines.append(f"  out P{port} <- {self.outputs[port]!r}")
        return "\n".join(lines)
