"""The DySER accelerator model: fabric, configurations, timing, interface."""

from repro.dyser.config import DyserConfig
from repro.dyser.config_cache import ConfigCache, ConfigCacheParams
from repro.dyser.dfg import ConstRef, Dfg, DfgNode, NodeRef, PortRef
from repro.dyser.fabric import (
    Fabric,
    FabricGeometry,
    default_capabilities,
    uniform_capabilities,
)
from repro.dyser.functional import FunctionalEvaluator
from repro.dyser.interface import DyserDevice, DyserStats
from repro.dyser.ops import FU_OP_INFO, FuCapability, FuOp, evaluate
from repro.dyser.timing import (
    DyserTimingParams,
    InvocationEngine,
    SteadyState,
)

__all__ = [
    "ConfigCache",
    "ConfigCacheParams",
    "ConstRef",
    "Dfg",
    "DfgNode",
    "DyserConfig",
    "DyserDevice",
    "DyserStats",
    "DyserTimingParams",
    "FU_OP_INFO",
    "Fabric",
    "FabricGeometry",
    "FuCapability",
    "FuOp",
    "FunctionalEvaluator",
    "InvocationEngine",
    "NodeRef",
    "PortRef",
    "SteadyState",
    "default_capabilities",
    "evaluate",
    "uniform_capabilities",
]
