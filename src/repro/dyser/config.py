"""Datapath configuration: a placed-and-routed DFG.

``dyser_init`` loads one of these into the fabric.  The spatial scheduler
(:mod:`repro.compiler.schedule`) produces the placement and routes; this
module owns the data structure, its validation, and the derived hardware
metrics the timing/energy models need (per-output path delay, configuration
size in words).

A configuration can also be *abstract* (placement without routes, or no
placement at all): functional evaluation only needs the DFG, and the timing
model falls back to distance/depth estimates.  Benches use this to isolate
scheduler quality from execution-model effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.dyser.dfg import ConstRef, Dfg, NodeRef, PortRef, Source
from repro.dyser.fabric import Coord, Fabric
from repro.dyser.ops import capability_of, latency_of

#: A signal source key: ("port", n) or ("node", id).
SourceKey = tuple[str, int]
#: A signal sink key: ("node", id, input_index) or ("out", port, 0).
SinkKey = tuple[str, int, int]


def source_key(src: Source) -> SourceKey | None:
    """Routing key for a source (constants are configured, not routed)."""
    if isinstance(src, PortRef):
        return ("port", src.port)
    if isinstance(src, NodeRef):
        return ("node", src.node)
    return None


@dataclass
class DyserConfig:
    """One loadable fabric configuration.

    Attributes:
        config_id: the id ``dinit`` names.
        dfg: the computation.
        fabric: the target fabric (geometry + capabilities).
        placement: DFG node id -> FU coordinate (None until scheduled).
        routes: (source key, sink key) -> switch path, first element is the
            source's entry switch, last is the sink's target switch.
    """

    config_id: int
    dfg: Dfg
    fabric: Fabric
    placement: dict[int, Coord] | None = None
    routes: dict[tuple[SourceKey, SinkKey], list[Coord]] | None = None
    _delay_cache: dict[int, int] | None = field(default=None, repr=False)

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check DFG structure, placement legality and route continuity."""
        self.dfg.validate()
        geometry = self.fabric.geometry
        for port in self.dfg.input_ports:
            if port >= geometry.num_input_ports:
                raise ConfigurationError(
                    f"input port {port} exceeds fabric's "
                    f"{geometry.num_input_ports} ports",
                    code="RPR206", port=port, direction="in",
                    limit=geometry.num_input_ports,
                )
        for port in self.dfg.output_ports:
            if port >= geometry.num_output_ports:
                raise ConfigurationError(
                    f"output port {port} exceeds fabric's "
                    f"{geometry.num_output_ports} ports",
                    code="RPR206", port=port, direction="out",
                    limit=geometry.num_output_ports,
                )
        if self.placement is not None:
            self._validate_placement()
        if self.routes is not None:
            self._validate_routes()

    def _validate_placement(self) -> None:
        placed = set()
        for nid, node in self.dfg.nodes.items():
            fu = self.placement.get(nid)
            if fu is None:
                raise ConfigurationError(f"node {nid} not placed",
                                         code="RPR207", node=nid)
            if fu in placed:
                raise ConfigurationError(f"FU {fu} hosts two nodes",
                                         code="RPR208", fu=fu, node=nid)
            placed.add(fu)
            if not self.fabric.supports(fu, capability_of(node.op)):
                raise ConfigurationError(
                    f"FU {fu} lacks capability for {node.op.value}",
                    code="RPR209", fu=fu, node=nid, op=node.op.value,
                    capability=capability_of(node.op).value,
                )

    def _validate_routes(self) -> None:
        geometry = self.fabric.geometry
        in_switches = geometry.input_port_switches()
        out_switches = geometry.output_port_switches()
        # Circuit switching: each directed switch->switch link carries one
        # signal; the same signal may fan out over the same link for free.
        link_owner: dict[tuple[Coord, Coord], SourceKey] = {}
        for (skey, sink), path in self.routes.items():
            if len(path) < 1:
                raise ConfigurationError(f"empty route for {skey}->{sink}",
                                         code="RPR210", signal=skey,
                                         sink=sink)
            expected_start = self._entry_switch(skey, in_switches)
            if path[0] != expected_start:
                raise ConfigurationError(
                    f"route {skey}->{sink} starts at {path[0]}, "
                    f"expected {expected_start}",
                    code="RPR210", signal=skey, sink=sink,
                    start=path[0], expected=expected_start,
                )
            expected_end = self._target_switches(sink, out_switches)
            if path[-1] not in expected_end:
                raise ConfigurationError(
                    f"route {skey}->{sink} ends at {path[-1]}, "
                    f"expected one of {expected_end}",
                    code="RPR210", signal=skey, sink=sink,
                    end=path[-1], expected=expected_end,
                )
            for a, b in zip(path, path[1:], strict=False):
                if b not in geometry.switch_neighbors(a):
                    raise ConfigurationError(
                        f"route {skey}->{sink}: {a}->{b} not adjacent",
                        code="RPR210", signal=skey, sink=sink, hop=[a, b],
                    )
                owner = link_owner.get((a, b))
                if owner is not None and owner != skey:
                    raise ConfigurationError(
                        f"link {a}->{b} carries both {owner} and {skey}",
                        code="RPR211", link=[a, b], owners=[owner, skey],
                    )
                link_owner[(a, b)] = skey

    def _entry_switch(self, skey: SourceKey, in_switches: list[Coord]) -> Coord:
        kind, n = skey
        if kind == "port":
            return in_switches[n]
        return self.fabric.geometry.fu_output_switch(self.placement[n])

    def _target_switches(self, sink: SinkKey, out_switches: list[Coord]) -> list[Coord]:
        kind, n, _slot = sink
        if kind == "out":
            return [out_switches[n]]
        return self.fabric.geometry.fu_input_switches(self.placement[n])

    # -- derived metrics -----------------------------------------------------

    def _route_hops(self, skey: SourceKey | None, sink: SinkKey) -> int:
        """Switch hops from a source to a sink, best available estimate."""
        if skey is None:  # constant: baked into the FU config
            return 0
        if self.routes is not None and (skey, sink) in self.routes:
            return len(self.routes[(skey, sink)]) - 1
        if self.placement is not None:
            start = self._entry_switch(
                skey, self.fabric.geometry.input_port_switches())
            targets = self._target_switches(
                sink, self.fabric.geometry.output_port_switches())
            return min(
                abs(start[0] - t[0]) + abs(start[1] - t[1]) for t in targets
            )
        return 1  # abstract config: one hop per edge

    def path_delays(self) -> dict[int, int]:
        """Cycles from invocation fire to each output port's value.

        Delay of a node = max over inputs of (source delay + route hops *
        switch delay) + op latency; an output port's delay adds its final
        route.  Cached (configs are immutable once built).
        """
        if self._delay_cache is not None:
            return self._delay_cache
        sw = self.fabric.switch_delay
        node_delay: dict[int, int] = {}
        for node in self.dfg.topo_order():
            arrivals = []
            for slot, src in enumerate(node.inputs):
                skey = source_key(src)
                base = node_delay[src.node] if isinstance(src, NodeRef) else 0
                hops = self._route_hops(skey, ("node", node.id, slot))
                arrivals.append(base + hops * sw)
            node_delay[node.id] = max(arrivals, default=0) + latency_of(node.op)
        delays: dict[int, int] = {}
        for port, src in self.dfg.outputs.items():
            skey = source_key(src)
            base = node_delay[src.node] if isinstance(src, NodeRef) else 0
            hops = self._route_hops(skey, ("out", port, 0))
            delays[port] = max(1, base + hops * sw)
        self._delay_cache = delays
        return delays

    def critical_delay(self) -> int:
        return max(self.path_delays().values())

    def config_words(self) -> int:
        """Configuration size in 8-byte words (drives dinit load time).

        2 words per FU (op select + constants base), 1 word per constant,
        1 word per routed switch hop, 1 word per used port.
        """
        words = 2 * len(self.dfg.nodes)
        words += sum(
            1
            for node in self.dfg.nodes.values()
            for src in node.inputs
            if isinstance(src, ConstRef)
        )
        if self.routes is not None:
            words += sum(len(path) - 1 for path in self.routes.values())
        else:
            edge_count = sum(
                1
                for node in self.dfg.nodes.values()
                for src in node.inputs
                if not isinstance(src, ConstRef)
            ) + len(self.dfg.outputs)
            # Abstract estimate: average route of 2 hops per edge.
            words += 2 * edge_count
        words += len(self.dfg.input_ports) + len(self.dfg.output_ports)
        return words

    def used_fus(self) -> int:
        return len(self.dfg.nodes)

    def used_switch_links(self) -> int:
        if self.routes is None:
            return 0
        return len({
            (a, b)
            for path in self.routes.values()
            for a, b in zip(path, path[1:], strict=False)
        })
