"""Configuration serialization: save/load DySER configurations as plain
dicts (JSON-compatible).

Useful for shipping compiled artifacts — a program plus its
configurations — without re-running the spatial scheduler, and for
inspecting what ``dyser_init`` actually loads.  The fabric itself is not
serialized: a configuration is only meaningful against a compatible
fabric, which the caller supplies on load (and validation re-checks).
"""

from __future__ import annotations

from repro.dyser.config import DyserConfig
from repro.dyser.dfg import ConstRef, Dfg, NodeRef, PortRef, Source
from repro.dyser.fabric import Fabric
from repro.dyser.ops import FuOp
from repro.errors import DyserError


def _source_to_obj(src: Source):
    if isinstance(src, PortRef):
        return {"kind": "port", "port": src.port}
    if isinstance(src, NodeRef):
        return {"kind": "node", "node": src.node}
    return {"kind": "const", "value": src.value}


def _source_from_obj(obj) -> Source:
    kind = obj.get("kind")
    if kind == "port":
        return PortRef(obj["port"])
    if kind == "node":
        return NodeRef(obj["node"])
    if kind == "const":
        return ConstRef(obj["value"])
    raise DyserError(f"bad source kind {kind!r}")


def config_to_dict(config: DyserConfig) -> dict:
    """Serialize ``config`` to a JSON-compatible dict."""
    dfg = config.dfg
    data: dict = {
        "config_id": config.config_id,
        "name": dfg.name,
        "nodes": [
            {
                "id": node.id,
                "op": node.op.value,
                "inputs": [_source_to_obj(s) for s in node.inputs],
            }
            for node in dfg.topo_order()
        ],
        "outputs": {
            str(port): _source_to_obj(src)
            for port, src in dfg.outputs.items()
        },
    }
    if config.placement is not None:
        data["placement"] = {
            str(nid): list(fu) for nid, fu in config.placement.items()
        }
    if config.routes is not None:
        data["routes"] = [
            {
                "source": list(skey),
                "sink": list(sink),
                "path": [list(sw) for sw in path],
            }
            for (skey, sink), path in config.routes.items()
        ]
    return data


def config_from_dict(data: dict, fabric: Fabric, *,
                     validate: bool = True) -> DyserConfig:
    """Rebuild a configuration against ``fabric``; validates on exit.

    ``validate=False`` skips the throwing validator and returns the
    configuration as-deserialized — the fuzz harness uses this to hand
    deliberately-ill-formed configurations to the *linter*, whose whole
    point is to report what validation would reject (and more).
    """
    for field in ("config_id", "nodes", "outputs"):
        if field not in data:
            raise DyserError(f"config payload missing {field!r}")
    dfg = Dfg(data.get("name", "config"))
    for node in data["nodes"]:
        dfg.add_node(
            FuOp(node["op"]),
            [_source_from_obj(s) for s in node["inputs"]],
            node_id=node["id"],
        )
    for port, src in data["outputs"].items():
        dfg.set_output(int(port), _source_from_obj(src))
    placement = None
    if "placement" in data:
        placement = {
            int(nid): tuple(fu)
            for nid, fu in data["placement"].items()
        }
    routes = None
    if "routes" in data:
        routes = {}
        for entry in data["routes"]:
            skey = tuple(entry["source"])
            sink = tuple(entry["sink"])
            routes[(skey, sink)] = [tuple(sw) for sw in entry["path"]]
    config = DyserConfig(data["config_id"], dfg, fabric,
                         placement=placement, routes=routes)
    if validate:
        config.validate()
    return config
