"""Configuration cache: DySER's fast configuration switching.

The prototype keeps recently used configurations resident so switching
between program regions does not pay the full reload.  We model an LRU
cache of ``capacity`` configurations: a hit switches in
``hit_switch_cycles``; a miss streams ``config_words`` words at
``load_words_per_cycle``.  ``capacity=0`` disables caching (every dinit is
a full reload), which the E9 sensitivity bench sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class ConfigCacheParams:
    capacity: int = 4
    load_words_per_cycle: float = 2.0
    hit_switch_cycles: int = 2


@dataclass
class ConfigCache:
    params: ConfigCacheParams = field(default_factory=ConfigCacheParams)
    _resident: list[int] = field(default_factory=list)  # MRU last
    hits: int = 0
    misses: int = 0

    def load_cycles(self, config_id: int, config_words: int) -> tuple[int, bool]:
        """Return (cycles to make the config active, was it a hit)."""
        if self.params.capacity > 0 and config_id in self._resident:
            self._resident.remove(config_id)
            self._resident.append(config_id)
            self.hits += 1
            return self.params.hit_switch_cycles, True
        self.misses += 1
        cycles = max(
            1, math.ceil(config_words / self.params.load_words_per_cycle)
        )
        if self.params.capacity > 0:
            if len(self._resident) >= self.params.capacity:
                self._resident.pop(0)
            self._resident.append(config_id)
        return cycles, False

    def flush(self) -> None:
        self._resident.clear()
