"""Functional evaluation of a DFG: one invocation in, one set of outputs out.

The fabric is a pure dataflow machine: an invocation consumes exactly one
value from every configured input port and produces exactly one value on
every configured output port.  Control flow inside a region is handled by
select operations (``sel``/``fsel``) placed by the compiler's
if-conversion, exactly as DySER's predication works in hardware.
"""

from __future__ import annotations

from repro.errors import DyserError
from repro.dyser.dfg import ConstRef, Dfg, PortRef, Source
from repro.dyser.ops import evaluate


class FunctionalEvaluator:
    """Evaluates a DFG invocation-by-invocation.

    The topological order is computed once at construction; per-invocation
    evaluation is a flat loop, which keeps simulation fast.
    """

    def __init__(self, dfg: Dfg) -> None:
        dfg.validate()
        self.dfg = dfg
        self._order = dfg.topo_order()
        self._input_ports = dfg.input_ports

    def required_ports(self) -> list[int]:
        return list(self._input_ports)

    def __call__(self, inputs: dict[int, int | float]) -> dict[int, int | float]:
        """Run one invocation.

        Args:
            inputs: value per configured input port.

        Returns:
            value per configured output port.
        """
        missing = [p for p in self._input_ports if p not in inputs]
        if missing:
            raise DyserError(f"invocation missing input ports {missing}")
        values: dict[int, int | float] = {}

        def resolve(src: Source):
            if isinstance(src, PortRef):
                return inputs[src.port]
            if isinstance(src, ConstRef):
                return src.value
            return values[src.node]

        for node in self._order:
            values[node.id] = evaluate(
                node.op, *(resolve(s) for s in node.inputs)
            )
        return {
            port: resolve(src) for port, src in self.dfg.outputs.items()
        }
