"""The CPU-facing DySER device: what the pipeline's extension unit talks to.

Owns the registered configurations, the configuration cache, and the
active :class:`InvocationEngine`.  The host core calls:

- :meth:`init_config` on ``dinit``,
- :meth:`send` on ``dsend``/``dfsend``/``dld``/``dldv`` (data path),
- :meth:`recv` on ``drecv``/``dfrecv``/``dst``/``dstv``.

All methods take and return *cycle timestamps* so the in-order scoreboard
core can account stalls precisely.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import DyserError
from repro.dyser.config import DyserConfig
from repro.dyser.config_cache import ConfigCache, ConfigCacheParams
from repro.dyser.fabric import Fabric
from repro.dyser.timing import DyserTimingParams, InvocationEngine


@dataclass
class DyserStats:
    invocations: int = 0
    values_sent: int = 0
    values_received: int = 0
    config_loads: int = 0
    config_hits: int = 0
    config_stall_cycles: int = 0
    unresolved_flow_stalls: int = 0
    fu_ops: int = 0
    switch_hops: int = 0
    config_words_loaded: int = 0


@dataclass
class DyserDevice:
    """One DySER instance attached to a core."""

    fabric: Fabric = field(default_factory=Fabric)
    timing: DyserTimingParams = field(default_factory=DyserTimingParams)
    cache_params: ConfigCacheParams = field(default_factory=ConfigCacheParams)

    def __post_init__(self) -> None:
        self.configs: dict[int, DyserConfig] = {}
        self.config_cache = ConfigCache(self.cache_params)
        self.engine: InvocationEngine | None = None
        self.stats = DyserStats()
        #: Structured event stream (:mod:`repro.obs.events`) or None;
        #: set by the harness when the run requests tracing.
        self.events = None
        #: Per-port stall cycles, folded into the run's metrics
        #: registry by :meth:`repro.cpu.Core._finalize_stats`.
        self.send_stall_cycles: Counter = Counter()
        self.recv_stall_cycles: Counter = Counter()

    # -- setup ---------------------------------------------------------------

    def register_config(self, config: DyserConfig) -> None:
        if config.config_id in self.configs:
            raise DyserError(f"duplicate config id {config.config_id}")
        config.validate()
        self.configs[config.config_id] = config

    def register_program(self, program) -> None:
        """Register every config a compiled program carries."""
        for config in program.dyser_configs.values():
            if config.config_id not in self.configs:
                self.register_config(config)

    # -- host operations -------------------------------------------------------

    def init_config(self, config_id: int, t: int) -> int:
        """Activate ``config_id``; return the cycle the fabric is ready."""
        config = self.configs.get(config_id)
        if config is None:
            raise DyserError(f"dinit of unregistered config {config_id}")
        start = t
        if self.engine is not None:
            if self.engine.config.config_id == config_id:
                return t  # already active: dinit is a no-op re-arm
            start = max(t, self.engine.drained_time())
            self._retire_engine()
        cycles, hit = self.config_cache.load_cycles(
            config_id, config.config_words()
        )
        self.stats.config_loads += 1
        if hit:
            self.stats.config_hits += 1
        else:
            self.stats.config_words_loaded += config.config_words()
        ready = start + cycles
        self.stats.config_stall_cycles += ready - t
        if self.events is not None:
            self.events.complete(
                "config_load", "dyser.config", t, ready - t,
                config=config_id, hit=hit,
                words=config.config_words())
        self.engine = InvocationEngine(config, self.timing,
                                       events=self.events)
        return ready

    def send(self, port: int, value: int | float, t_ready: int) -> int:
        engine = self._require_engine("send")
        done = engine.send(port, value, t_ready)
        self.stats.values_sent += 1
        if done > t_ready:
            self.send_stall_cycles[port] += done - t_ready
            if self.events is not None:
                self.events.complete("send_stall", "dyser.port",
                                     t_ready, done - t_ready, port=port)
        return done

    def send_stream(self, port: int, values, arrivals) -> int:
        """Batched sends to one port (``dldv``/``dfldv`` streams).

        Cycle-exact with calling :meth:`send` per element; returns the
        total send-stall cycles so the core can charge them in one go.
        Traced devices take the per-send path so the event stream is
        unchanged.
        """
        if self.events is not None:
            total = 0
            for value, arrive in zip(values, arrivals, strict=True):
                done = self.send(port, value, arrive)
                if done > arrive:
                    total += done - arrive
            return total
        engine = self._require_engine("send")
        total = engine.send_stream(port, values, arrivals)
        self.stats.values_sent += len(values)
        if total:
            self.send_stall_cycles[port] += total
        return total

    def send_wide(self, base_port: int, values, arrivals) -> int:
        """Bulk sends of one wide transfer (``dldw``/``dfldw``): value
        *i* goes to port ``base_port + i``.

        Cycle-exact with per-element :meth:`send` calls (see
        :meth:`InvocationEngine.send_wide`); returns total send-stall
        cycles.  The batched backend's lockstep handlers use this to
        collapse N×k call chains into N.
        """
        if self.events is not None:
            total = 0
            for i, (value, arrive) in enumerate(zip(values, arrivals, strict=True)):
                done = self.send(base_port + i, value, arrive)
                if done > arrive:
                    total += done - arrive
            return total
        engine = self._require_engine("send")
        dones = engine.send_wide(base_port, values, arrivals)
        self.stats.values_sent += len(dones)
        total = 0
        stalls = self.send_stall_cycles
        for i, (done, arrive) in enumerate(zip(dones, arrivals, strict=True)):
            if done > arrive:
                stall = done - arrive
                stalls[base_port + i] += stall
                total += stall
        return total

    def recv(self, port: int, t_try: int) -> tuple[int | float, int]:
        engine = self._require_engine("recv")
        value, done = engine.recv(port, t_try)
        self.stats.values_received += 1
        if done > t_try:
            self.recv_stall_cycles[port] += done - t_try
            if self.events is not None:
                self.events.complete("recv_stall", "dyser.port",
                                     t_try, done - t_try, port=port)
        return value, done

    # -- bookkeeping -------------------------------------------------------------

    def _require_engine(self, what: str) -> InvocationEngine:
        if self.engine is None:
            raise DyserError(f"{what} with no configuration loaded")
        return self.engine

    def _fold_engine_stats(self) -> None:
        assert self.engine is not None
        self.stats.invocations += self.engine.invocations
        self.stats.unresolved_flow_stalls += self.engine.unresolved_stalls
        self.stats.fu_ops += self.engine.invocations * self.engine.ops_per_fire
        self.stats.switch_hops += (
            self.engine.invocations * self.engine.hops_per_fire)

    def _retire_engine(self) -> None:
        self._fold_engine_stats()
        self.engine.quiesce()
        self.engine = None

    def finalize(self) -> DyserStats:
        """Fold the active engine's counters in; call at end of run."""
        if self.engine is not None:
            self._fold_engine_stats()
            self.engine = None
        return self.stats

    @property
    def active_config_id(self) -> int | None:
        return self.engine.config.config_id if self.engine else None

    def steady_state(self):
        """Analytic steady-state of the active configuration
        (:class:`~repro.dyser.timing.SteadyState`)."""
        return self._require_engine("steady_state").steady_state()
