"""Input/output port FIFOs with credit-style flow control.

Timing contract (exact for compiler-emitted code, which sends and receives
in invocation order):

- A value sent to a full input FIFO stalls until the invocation that frees
  its slot has fired.  Because sends are emitted in invocation order, that
  freeing invocation's inputs were all sent earlier, so its fire time is
  already known when the stalling send executes.
- Symmetrically, an output slot is freed by the receive of an earlier
  invocation's value, which compiler-emitted code has already executed.

When the freeing event is genuinely unknown (hand-written code violating
the ordering), the FIFO optimistically accepts without a stall rather than
guessing; :class:`~repro.dyser.interface.DyserDevice` counts these cases so
tests can assert they never happen for generated code.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import DyserError


@dataclass
class InputPortFifo:
    """One input port's FIFO."""

    port: int
    depth: int = 4
    pending: deque = field(default_factory=deque)   # (value, entry_time)
    total_sent: int = 0
    unresolved_stalls: int = 0

    def send(self, value, t_ready: int, fire_times: list[int]) -> int:
        """Deposit ``value``; return the cycle the send completes."""
        freeing_invocation = self.total_sent - self.depth
        entry = t_ready
        if freeing_invocation >= 0:
            if freeing_invocation < len(fire_times):
                entry = max(t_ready, fire_times[freeing_invocation])
            else:
                self.unresolved_stalls += 1
        self.pending.append((value, entry))
        self.total_sent += 1
        return entry

    def has_value(self) -> bool:
        return bool(self.pending)

    def consume(self) -> tuple[int | float, int]:
        if not self.pending:
            raise DyserError(f"input port {self.port}: consume on empty FIFO")
        return self.pending.popleft()

    def reset(self) -> None:
        if self.pending:
            raise DyserError(
                f"input port {self.port}: reconfigure with "
                f"{len(self.pending)} values still pending"
            )
        self.total_sent = 0


@dataclass
class OutputPortFifo:
    """One output port's FIFO."""

    port: int
    depth: int = 4
    ready: deque = field(default_factory=deque)     # (value, ready_time)
    total_produced: int = 0
    total_received: int = 0
    recv_times: list[int] = field(default_factory=list)
    unresolved_stalls: int = 0

    def space_time(self) -> int | None:
        """Earliest cycle the next produced value has a slot.

        Returns None when space exists now (or the freeing receive has not
        happened yet — the optimistic case).
        """
        freeing_recv = self.total_produced - self.depth
        if freeing_recv < 0:
            return None
        if freeing_recv < len(self.recv_times):
            return self.recv_times[freeing_recv]
        self.unresolved_stalls += 1
        return None

    def produce(self, value, ready_time: int) -> None:
        self.ready.append((value, ready_time))
        self.total_produced += 1

    def recv(self, t_try: int) -> tuple[int | float, int]:
        """Pop the oldest value; return (value, completion_time)."""
        if not self.ready:
            raise DyserError(
                f"output port {self.port}: receive with no pending "
                f"invocation (region sent fewer values than it receives?)"
            )
        value, ready_time = self.ready.popleft()
        done = max(t_try, ready_time)
        self.recv_times.append(done)
        self.total_received += 1
        return value, done

    def drained_time(self) -> int:
        """Cycle by which everything produced so far is gone."""
        if self.ready:
            return max(t for _v, t in self.ready)
        return self.recv_times[-1] if self.recv_times else 0

    def reset(self) -> None:
        if self.ready:
            raise DyserError(
                f"output port {self.port}: reconfigure with "
                f"{len(self.ready)} values unread"
            )
        self.total_produced = 0
        self.total_received = 0
        self.recv_times.clear()
