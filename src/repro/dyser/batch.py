"""Batched DySER execution: share functional evaluation across a lane.

In a lockstep batch (:mod:`repro.cpu.batchcore`) every point owns its
own :class:`~repro.dyser.interface.DyserDevice` — FIFO depths,
initiation interval and config-cache capacity are exactly the knobs a
sweep varies, so timing state must stay per point.  But the *values*
flowing through the fabric are identical for every point: all devices
see the same send sequence (shared architectural registers and memory)
and the :class:`~repro.dyser.functional.FunctionalEvaluator` is a pure
function of the input vector.  Per-point evaluation would therefore
walk the same DFG N times per fire — the dominant cost of a DySER-mode
batch.

:class:`TapedEvaluator` removes that redundancy: the first device to
reach fire *k* of a configuration computes it and appends the output
dict to a shared per-config *tape*; every later device replays the
tape entry.  Output dicts are served as-is — consumers only iterate
them (``.items()``), never mutate.

:class:`BatchedDyserDevice` wires the tape in: it wraps the engine's
evaluator after every (re)configuration and saves the per-config fire
cursor when an engine retires, so a config that is re-activated later
(config-cache round trips) resumes its tape where it left off.

Soundness: the tape is only valid while the lane's devices all observe
the same fire sequence per config — guaranteed by the lockstep core's
shared control flow and shared operand values.  Do not share a tape
across devices fed by different programs or memory images.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dyser.functional import FunctionalEvaluator
from repro.dyser.interface import DyserDevice


class TapedEvaluator:
    """Record/replay wrapper around a :class:`FunctionalEvaluator`.

    ``tape`` is the shared per-config list of output dicts; ``index``
    is this device's private cursor into it (fires already consumed by
    this device for this config).
    """

    __slots__ = ("inner", "tape", "index")

    def __init__(self, inner: FunctionalEvaluator,
                 tape: list, index: int = 0) -> None:
        self.inner = inner
        self.tape = tape
        self.index = index

    def __call__(self, inputs: dict) -> dict:
        i = self.index
        tape = self.tape
        if i < len(tape):
            outputs = tape[i]
        else:
            outputs = self.inner(inputs)
            tape.append(outputs)
        self.index = i + 1
        return outputs

    # Parity with FunctionalEvaluator's public surface.
    def required_ports(self) -> list[int]:
        return self.inner.required_ports()


@dataclass
class BatchedDyserDevice(DyserDevice):
    """A :class:`DyserDevice` whose invocations replay a shared tape.

    Every device of one lane is constructed with the *same* ``tape``
    dict (config id -> list of output dicts).  Timing behaviour is
    untouched — only the DFG walk is deduplicated.
    """

    tape: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        super().__post_init__()
        #: Fire cursor per config id, saved when an engine retires so
        #: a re-activated config resumes its tape position.
        self._fire_base: dict[int, int] = {}

    def init_config(self, config_id: int, t: int) -> int:
        ready = super().init_config(config_id, t)
        engine = self.engine
        if engine is not None and not isinstance(engine.evaluator,
                                                 TapedEvaluator):
            cid = engine.config.config_id
            engine.evaluator = TapedEvaluator(
                engine.evaluator,
                self.tape.setdefault(cid, []),
                self._fire_base.get(cid, 0),
            )
        return ready

    def _fold_engine_stats(self) -> None:
        engine = self.engine
        if engine is not None and isinstance(engine.evaluator,
                                             TapedEvaluator):
            cid = engine.config.config_id
            self._fire_base[cid] = engine.evaluator.index
        super()._fold_engine_stats()
