"""Invocation pipeline timing: when does each output value appear?

The fabric is fully pipelined: one invocation can fire per ``ii`` cycles
(initiation interval, 1 by default).  An invocation fires when every
configured input port holds a value; its outputs become visible after the
configuration's per-output path delay.  Output FIFO backpressure delays
firing when results pile up unread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dyser.config import DyserConfig
from repro.dyser.functional import FunctionalEvaluator
from repro.dyser.ports import InputPortFifo, OutputPortFifo


@dataclass
class DyserTimingParams:
    """Knobs of the fabric's dynamic behaviour."""

    input_fifo_depth: int = 4
    output_fifo_depth: int = 4
    initiation_interval: int = 1


@dataclass(frozen=True)
class SteadyState:
    """Analytic steady-state pipeline behaviour of one configuration.

    At saturation (inputs always available, outputs always drained) the
    fabric fires one invocation every ``interval`` cycles and each
    invocation's last output appears ``latency`` cycles after it fires.
    The event-driven engine converges to exactly this behaviour — the
    fast backend leans on it to reason about streamed transfers, and
    ``tests/test_dyser_timing.py`` asserts the two models agree.
    """

    interval: int          #: cycles between successive firings
    latency: int           #: fire -> last-output-ready path delay
    input_fifo_depth: int
    output_fifo_depth: int

    @property
    def throughput(self) -> float:
        """Invocations per cycle at saturation."""
        return 1.0 / self.interval if self.interval else 0.0

    def makespan(self, invocations: int) -> int:
        """Cycles from the first fire until the last output of
        ``invocations`` back-to-back invocations is ready."""
        if invocations <= 0:
            return 0
        return (invocations - 1) * self.interval + self.latency


class InvocationEngine:
    """Functional + timing state for one active configuration."""

    def __init__(self, config: DyserConfig, params: DyserTimingParams,
                 events=None) -> None:
        config.validate()
        self.config = config
        self.params = params
        #: Structured event stream (:mod:`repro.obs.events`) or None.
        self.events = events
        self.evaluator = FunctionalEvaluator(config.dfg)
        self.delays = config.path_delays()
        self._max_delay = max(self.delays.values(), default=0)
        self.in_fifos = {
            p: InputPortFifo(p, params.input_fifo_depth)
            for p in config.dfg.input_ports
        }
        self.out_fifos = {
            p: OutputPortFifo(p, params.output_fifo_depth)
            for p in config.dfg.output_ports
        }
        self.fire_times: list[int] = []
        # Activity factors for the energy model.
        self.ops_per_fire = len(config.dfg.nodes)
        self.hops_per_fire = config.used_switch_links()

    # -- host-visible operations -------------------------------------------

    def send(self, port: int, value: int | float, t_ready: int) -> int:
        """Deposit one value; fire any enabled invocations; return
        completion cycle of the send."""
        fifo = self.in_fifos.get(port)
        if fifo is None:
            from repro.errors import DyserError

            raise DyserError(
                f"send to port {port}, which config "
                f"{self.config.config_id} does not use"
            )
        was_empty = not fifo.pending
        done = fifo.send(value, t_ready, self.fire_times)
        # Invariant: after every fire loop at least one input FIFO is
        # empty, so a send that lands on a non-empty FIFO cannot enable
        # a firing — skip the all-ports scan entirely.
        if was_empty:
            self._fire_ready()
        return done

    def send_stream(self, port: int, values, arrivals) -> int:
        """Batched equivalent of ``send(port, v, a)`` per element.

        For single-input-port configurations (the temporal-vector case
        the compiler emits ``dldv`` for) this fast-forwards the pipeline
        arithmetically: each value fires its invocation immediately, so
        the deque traffic and readiness scans of the per-send path
        collapse into one pass over ``fire_times``.  Behaviour is
        cycle-exact with the per-send path; multi-port configurations,
        traced engines and non-empty FIFOs fall back to it.

        Returns the total send-stall cycles (sum over elements of
        ``done - arrival`` where positive).
        """
        fifo = self.in_fifos.get(port)
        if fifo is None:
            from repro.errors import DyserError

            raise DyserError(
                f"send to port {port}, which config "
                f"{self.config.config_id} does not use"
            )
        if (self.events is not None or len(self.in_fifos) != 1
                or fifo.pending):
            total = 0
            for value, arrive in zip(values, arrivals):
                done = self.send(port, value, arrive)
                if done > arrive:
                    total += done - arrive
            return total
        ft = self.fire_times
        depth = fifo.depth
        ii = self.params.initiation_interval
        out = list(self.out_fifos.values())
        evaluator = self.evaluator
        delays = self.delays
        out_fifos = self.out_fifos
        sent = fifo.total_sent
        total = 0
        for value, arrive in zip(values, arrivals):
            # InputPortFifo.send: wait for the freeing invocation.
            entry = arrive
            free = sent - depth
            if free >= 0:
                if free < len(ft):
                    f = ft[free]
                    if f > entry:
                        entry = f
                else:  # pragma: no cover - unreachable when depth >= 1
                    fifo.unresolved_stalls += 1
            sent += 1
            if entry > arrive:
                total += entry - arrive
            # Single input port and an empty FIFO: the invocation fires
            # as soon as this value is in (plus ii and output-space
            # constraints), exactly as _fire_ready would compute.
            fire_at = entry
            if ft:
                floor = ft[-1] + ii
                if floor > fire_at:
                    fire_at = floor
            for fo in out:
                space = fo.space_time()
                if space is not None and space > fire_at:
                    fire_at = space
            ft.append(fire_at)
            outputs = evaluator({port: value})
            for p, v in outputs.items():
                out_fifos[p].produce(v, fire_at + delays[p])
        fifo.total_sent = sent
        return total

    def recv(self, port: int, t_try: int) -> tuple[int | float, int]:
        fifo = self.out_fifos.get(port)
        if fifo is None:
            from repro.errors import DyserError

            raise DyserError(
                f"recv from port {port}, which config "
                f"{self.config.config_id} does not drive"
            )
        return fifo.recv(t_try)

    # -- firing --------------------------------------------------------------

    def _fire_ready(self) -> None:
        while all(f.has_value() for f in self.in_fifos.values()):
            inputs: dict[int, int | float] = {}
            fire_at = 0
            for port, fifo in self.in_fifos.items():
                value, entry = fifo.consume()
                inputs[port] = value
                fire_at = max(fire_at, entry)
            if self.fire_times:
                fire_at = max(
                    fire_at,
                    self.fire_times[-1] + self.params.initiation_interval,
                )
            for fifo in self.out_fifos.values():
                space = fifo.space_time()
                if space is not None:
                    fire_at = max(fire_at, space)
            self.fire_times.append(fire_at)
            if self.events is not None:
                self.events.complete(
                    "invocation", "dyser.invoke", fire_at,
                    self._max_delay,
                    config=self.config.config_id,
                    index=len(self.fire_times) - 1)
            outputs = self.evaluator(inputs)
            for port, value in outputs.items():
                self.out_fifos[port].produce(
                    value, fire_at + self.delays[port]
                )

    def steady_state(self) -> SteadyState:
        """Analytic steady-state interval/latency of this configuration."""
        return SteadyState(
            interval=max(1, self.params.initiation_interval),
            latency=self._max_delay,
            input_fifo_depth=self.params.input_fifo_depth,
            output_fifo_depth=self.params.output_fifo_depth,
        )

    # -- lifecycle -----------------------------------------------------------

    def drained_time(self) -> int:
        """Cycle by which all fired invocations' outputs are consumed or
        ready; used when switching configurations."""
        times = [f.drained_time() for f in self.out_fifos.values()]
        return max(times, default=0)

    def quiesce(self) -> None:
        """Assert the pipeline is empty and reset counters (reconfigure)."""
        for fifo in self.in_fifos.values():
            fifo.reset()
        for fifo in self.out_fifos.values():
            fifo.reset()
        self.fire_times.clear()

    @property
    def invocations(self) -> int:
        return len(self.fire_times)

    @property
    def unresolved_stalls(self) -> int:
        return sum(
            f.unresolved_stalls for f in self.in_fifos.values()
        ) + sum(f.unresolved_stalls for f in self.out_fifos.values())
