"""Invocation pipeline timing: when does each output value appear?

The fabric is fully pipelined: one invocation can fire per ``ii`` cycles
(initiation interval, 1 by default).  An invocation fires when every
configured input port holds a value; its outputs become visible after the
configuration's per-output path delay.  Output FIFO backpressure delays
firing when results pile up unread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dyser.config import DyserConfig
from repro.dyser.functional import FunctionalEvaluator
from repro.dyser.ports import InputPortFifo, OutputPortFifo


@dataclass
class DyserTimingParams:
    """Knobs of the fabric's dynamic behaviour."""

    input_fifo_depth: int = 4
    output_fifo_depth: int = 4
    initiation_interval: int = 1


class InvocationEngine:
    """Functional + timing state for one active configuration."""

    def __init__(self, config: DyserConfig, params: DyserTimingParams,
                 events=None) -> None:
        config.validate()
        self.config = config
        self.params = params
        #: Structured event stream (:mod:`repro.obs.events`) or None.
        self.events = events
        self.evaluator = FunctionalEvaluator(config.dfg)
        self.delays = config.path_delays()
        self._max_delay = max(self.delays.values(), default=0)
        self.in_fifos = {
            p: InputPortFifo(p, params.input_fifo_depth)
            for p in config.dfg.input_ports
        }
        self.out_fifos = {
            p: OutputPortFifo(p, params.output_fifo_depth)
            for p in config.dfg.output_ports
        }
        self.fire_times: list[int] = []
        # Activity factors for the energy model.
        self.ops_per_fire = len(config.dfg.nodes)
        self.hops_per_fire = config.used_switch_links()

    # -- host-visible operations -------------------------------------------

    def send(self, port: int, value: int | float, t_ready: int) -> int:
        """Deposit one value; fire any enabled invocations; return
        completion cycle of the send."""
        fifo = self.in_fifos.get(port)
        if fifo is None:
            from repro.errors import DyserError

            raise DyserError(
                f"send to port {port}, which config "
                f"{self.config.config_id} does not use"
            )
        done = fifo.send(value, t_ready, self.fire_times)
        self._fire_ready()
        return done

    def recv(self, port: int, t_try: int) -> tuple[int | float, int]:
        fifo = self.out_fifos.get(port)
        if fifo is None:
            from repro.errors import DyserError

            raise DyserError(
                f"recv from port {port}, which config "
                f"{self.config.config_id} does not drive"
            )
        return fifo.recv(t_try)

    # -- firing --------------------------------------------------------------

    def _fire_ready(self) -> None:
        while all(f.has_value() for f in self.in_fifos.values()):
            inputs: dict[int, int | float] = {}
            fire_at = 0
            for port, fifo in self.in_fifos.items():
                value, entry = fifo.consume()
                inputs[port] = value
                fire_at = max(fire_at, entry)
            if self.fire_times:
                fire_at = max(
                    fire_at,
                    self.fire_times[-1] + self.params.initiation_interval,
                )
            for fifo in self.out_fifos.values():
                space = fifo.space_time()
                if space is not None:
                    fire_at = max(fire_at, space)
            self.fire_times.append(fire_at)
            if self.events is not None:
                self.events.complete(
                    "invocation", "dyser.invoke", fire_at,
                    self._max_delay,
                    config=self.config.config_id,
                    index=len(self.fire_times) - 1)
            outputs = self.evaluator(inputs)
            for port, value in outputs.items():
                self.out_fifos[port].produce(
                    value, fire_at + self.delays[port]
                )

    # -- lifecycle -----------------------------------------------------------

    def drained_time(self) -> int:
        """Cycle by which all fired invocations' outputs are consumed or
        ready; used when switching configurations."""
        times = [f.drained_time() for f in self.out_fifos.values()]
        return max(times, default=0)

    def quiesce(self) -> None:
        """Assert the pipeline is empty and reset counters (reconfigure)."""
        for fifo in self.in_fifos.values():
            fifo.reset()
        for fifo in self.out_fifos.values():
            fifo.reset()
        self.fire_times.clear()

    @property
    def invocations(self) -> int:
        return len(self.fire_times)

    @property
    def unresolved_stalls(self) -> int:
        return sum(
            f.unresolved_stalls for f in self.in_fifos.values()
        ) + sum(f.unresolved_stalls for f in self.out_fifos.values())
