"""Invocation pipeline timing: when does each output value appear?

The fabric is fully pipelined: one invocation can fire per ``ii`` cycles
(initiation interval, 1 by default).  An invocation fires when every
configured input port holds a value; its outputs become visible after the
configuration's per-output path delay.  Output FIFO backpressure delays
firing when results pile up unread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dyser.config import DyserConfig
from repro.dyser.functional import FunctionalEvaluator
from repro.dyser.ports import InputPortFifo, OutputPortFifo


@dataclass
class DyserTimingParams:
    """Knobs of the fabric's dynamic behaviour."""

    input_fifo_depth: int = 4
    output_fifo_depth: int = 4
    initiation_interval: int = 1


@dataclass(frozen=True)
class SteadyState:
    """Analytic steady-state pipeline behaviour of one configuration.

    At saturation (inputs always available, outputs always drained) the
    fabric fires one invocation every ``interval`` cycles and each
    invocation's last output appears ``latency`` cycles after it fires.
    The event-driven engine converges to exactly this behaviour — the
    fast backend leans on it to reason about streamed transfers, and
    ``tests/test_dyser_timing.py`` asserts the two models agree.
    """

    interval: int          #: cycles between successive firings
    latency: int           #: fire -> last-output-ready path delay
    input_fifo_depth: int
    output_fifo_depth: int

    @property
    def throughput(self) -> float:
        """Invocations per cycle at saturation."""
        return 1.0 / self.interval if self.interval else 0.0

    def makespan(self, invocations: int) -> int:
        """Cycles from the first fire until the last output of
        ``invocations`` back-to-back invocations is ready."""
        if invocations <= 0:
            return 0
        return (invocations - 1) * self.interval + self.latency


class InvocationEngine:
    """Functional + timing state for one active configuration."""

    def __init__(self, config: DyserConfig, params: DyserTimingParams,
                 events=None) -> None:
        config.validate()
        self.config = config
        self.params = params
        #: Structured event stream (:mod:`repro.obs.events`) or None.
        self.events = events
        self.evaluator = FunctionalEvaluator(config.dfg)
        self.delays = config.path_delays()
        self._max_delay = max(self.delays.values(), default=0)
        self.in_fifos = {
            p: InputPortFifo(p, params.input_fifo_depth)
            for p in config.dfg.input_ports
        }
        self.out_fifos = {
            p: OutputPortFifo(p, params.output_fifo_depth)
            for p in config.dfg.output_ports
        }
        self.fire_times: list[int] = []
        # Memo for send_wide: (base_port, count) -> tuple of the target
        # input FIFOs, or None when some target port does not exist.
        self._wide_fifos: dict[tuple[int, int], tuple | None] = {}
        # Readiness bookkeeping: number of input FIFOs currently
        # holding at least one value.  A firing is possible exactly
        # when every FIFO is non-empty, so `send` compares this count
        # against the port count instead of scanning all FIFOs.
        # `_fire_ready` recomputes it on exit; any code that enqueues
        # without going through `send` must call `_fire_ready` after.
        self._filled = 0
        self._in_items = list(self.in_fifos.items())
        self._out_list = list(self.out_fifos.values())
        # Activity factors for the energy model.
        self.ops_per_fire = len(config.dfg.nodes)
        self.hops_per_fire = config.used_switch_links()

    # -- host-visible operations -------------------------------------------

    def send(self, port: int, value: int | float, t_ready: int) -> int:
        """Deposit one value; fire any enabled invocations; return
        completion cycle of the send."""
        fifo = self.in_fifos.get(port)
        if fifo is None:
            from repro.errors import DyserError

            raise DyserError(
                f"send to port {port}, which config "
                f"{self.config.config_id} does not use"
            )
        was_empty = not fifo.pending
        done = fifo.send(value, t_ready, self.fire_times)
        # Invariant: after every fire loop at least one input FIFO is
        # empty, so a send that lands on a non-empty FIFO cannot enable
        # a firing; one that fills the last empty FIFO always does.
        if was_empty:
            self._filled += 1
            if self._filled == len(self._in_items):
                self._fire_ready()
        return done

    def send_stream(self, port: int, values, arrivals) -> int:
        """Batched equivalent of ``send(port, v, a)`` per element.

        For single-input-port configurations (the temporal-vector case
        the compiler emits ``dldv`` for) this fast-forwards the pipeline
        arithmetically: each value fires its invocation immediately, so
        the deque traffic and readiness scans of the per-send path
        collapse into one pass over ``fire_times``.  Behaviour is
        cycle-exact with the per-send path; multi-port configurations,
        traced engines and non-empty FIFOs fall back to it.

        Returns the total send-stall cycles (sum over elements of
        ``done - arrival`` where positive).
        """
        fifo = self.in_fifos.get(port)
        if fifo is None:
            from repro.errors import DyserError

            raise DyserError(
                f"send to port {port}, which config "
                f"{self.config.config_id} does not use"
            )
        if (self.events is not None or len(self.in_fifos) != 1
                or fifo.pending):
            total = 0
            for value, arrive in zip(values, arrivals, strict=True):
                done = self.send(port, value, arrive)
                if done > arrive:
                    total += done - arrive
            return total
        ft = self.fire_times
        depth = fifo.depth
        ii = self.params.initiation_interval
        out = list(self.out_fifos.values())
        evaluator = self.evaluator
        delays = self.delays
        out_fifos = self.out_fifos
        sent = fifo.total_sent
        total = 0
        for value, arrive in zip(values, arrivals, strict=True):
            # InputPortFifo.send: wait for the freeing invocation.
            entry = arrive
            free = sent - depth
            if free >= 0:
                if free < len(ft):
                    f = ft[free]
                    if f > entry:
                        entry = f
                else:  # pragma: no cover - unreachable when depth >= 1
                    fifo.unresolved_stalls += 1
            sent += 1
            if entry > arrive:
                total += entry - arrive
            # Single input port and an empty FIFO: the invocation fires
            # as soon as this value is in (plus ii and output-space
            # constraints), exactly as _fire_ready would compute.
            fire_at = entry
            if ft:
                floor = ft[-1] + ii
                if floor > fire_at:
                    fire_at = floor
            for fo in out:
                space = fo.space_time()
                if space is not None and space > fire_at:
                    fire_at = space
            ft.append(fire_at)
            outputs = evaluator({port: value})
            for p, v in outputs.items():
                out_fifos[p].produce(v, fire_at + delays[p])
        fifo.total_sent = sent
        return total

    def send_wide(self, base_port: int, values, arrivals) -> list[int]:
        """Bulk equivalent of ``send(base_port + i, v_i, a_i)`` for a
        wide transfer (one value per consecutive port); returns the
        per-element completion cycles.

        Cycle-exact with the per-element path when every target FIFO
        starts empty: the elements land on *distinct* ports, so no
        invocation can become ready until the last element is in —
        enqueueing them all and scanning readiness once reproduces the
        per-send fire sequence exactly, and no fire interleaves with
        the enqueues, so each FIFO's freeing recurrence sees the same
        ``fire_times``.  When the transfer additionally covers *all*
        input ports (the common compiler shape for ``dldw``), exactly
        one invocation fires and its time is computed arithmetically —
        no deque traffic at all, mirroring ``send_stream``'s
        steady-state fast-forward.  A non-empty target FIFO could let a
        fire trigger mid-transfer (extending ``fire_times`` under later
        elements), so that case — like traced engines — takes the
        per-send path.
        """
        k = len(values)
        if self.events is None:
            in_fifos = self.in_fifos
            key = (base_port, k)
            fifos = self._wide_fifos.get(key, False)
            if fifos is False:
                got: list | None = []
                for i in range(k):
                    fifo = in_fifos.get(base_port + i)
                    if fifo is None:
                        got = None
                        break
                    got.append(fifo)
                fifos = tuple(got) if got is not None else None
                self._wide_fifos[key] = fifos
            if fifos is not None:
                for fifo in fifos:
                    if fifo.pending:
                        break
                else:
                    ft = self.fire_times
                    if len(in_fifos) != k:
                        # Extra (dsend-fed) input ports: enqueue all,
                        # then run the generic fire scan once.
                        dones = [fifo.send(value, arrive, ft)
                                 for fifo, value, arrive
                                 in zip(fifos, values, arrivals,
                                        strict=True)]
                        self._fire_ready()
                        return dones
                    # Full coverage: exactly one fire, consuming
                    # exactly these values — compute it in place.
                    nft = len(ft)
                    fire_at = (ft[-1] + self.params.initiation_interval
                               if nft else 0)
                    dones = []
                    append = dones.append
                    inputs: dict[int, int | float] = {}
                    port = base_port
                    for fifo, value, arrive in zip(fifos, values,
                                                   arrivals, strict=True):
                        entry = arrive
                        free = fifo.total_sent - fifo.depth
                        if free >= 0:
                            if free < nft:
                                f = ft[free]
                                if f > entry:
                                    entry = f
                            else:
                                fifo.unresolved_stalls += 1
                        fifo.total_sent += 1
                        append(entry)
                        if entry > fire_at:
                            fire_at = entry
                        inputs[port] = value
                        port += 1
                    out_fifos = self.out_fifos
                    for fo in out_fifos.values():
                        space = fo.space_time()
                        if space is not None and space > fire_at:
                            fire_at = space
                    ft.append(fire_at)
                    delays = self.delays
                    for p, v in self.evaluator(inputs).items():
                        out_fifos[p].produce(v, fire_at + delays[p])
                    return dones
        return [self.send(base_port + i, v, a)
                for i, (v, a) in enumerate(zip(values, arrivals,
                                               strict=True))]

    def recv(self, port: int, t_try: int) -> tuple[int | float, int]:
        fifo = self.out_fifos.get(port)
        if fifo is None:
            from repro.errors import DyserError

            raise DyserError(
                f"recv from port {port}, which config "
                f"{self.config.config_id} does not drive"
            )
        return fifo.recv(t_try)

    # -- firing --------------------------------------------------------------

    def _fire_ready(self) -> None:
        in_items = self._in_items
        out_list = self._out_list
        ft = self.fire_times
        ii = self.params.initiation_interval
        delays = self.delays
        out_fifos = self.out_fifos
        while True:
            for _port, fifo in in_items:
                if not fifo.pending:
                    filled = 0
                    for _p, f in in_items:
                        if f.pending:
                            filled += 1
                    self._filled = filled
                    return
            inputs: dict[int, int | float] = {}
            fire_at = 0
            for port, fifo in in_items:
                value, entry = fifo.pending.popleft()
                inputs[port] = value
                if entry > fire_at:
                    fire_at = entry
            if ft:
                floor = ft[-1] + ii
                if floor > fire_at:
                    fire_at = floor
            for fifo in out_list:
                space = fifo.space_time()
                if space is not None and space > fire_at:
                    fire_at = space
            ft.append(fire_at)
            if self.events is not None:
                self.events.complete(
                    "invocation", "dyser.invoke", fire_at,
                    self._max_delay,
                    config=self.config.config_id,
                    index=len(ft) - 1)
            outputs = self.evaluator(inputs)
            for port, value in outputs.items():
                out_fifos[port].produce(value, fire_at + delays[port])

    def steady_state(self) -> SteadyState:
        """Analytic steady-state interval/latency of this configuration."""
        return SteadyState(
            interval=max(1, self.params.initiation_interval),
            latency=self._max_delay,
            input_fifo_depth=self.params.input_fifo_depth,
            output_fifo_depth=self.params.output_fifo_depth,
        )

    # -- lifecycle -----------------------------------------------------------

    def drained_time(self) -> int:
        """Cycle by which all fired invocations' outputs are consumed or
        ready; used when switching configurations."""
        times = [f.drained_time() for f in self.out_fifos.values()]
        return max(times, default=0)

    def quiesce(self) -> None:
        """Assert the pipeline is empty and reset counters (reconfigure)."""
        for fifo in self.in_fifos.values():
            fifo.reset()
        for fifo in self.out_fifos.values():
            fifo.reset()
        self.fire_times.clear()
        self._filled = 0

    @property
    def invocations(self) -> int:
        return len(self.fire_times)

    @property
    def unresolved_stalls(self) -> int:
        return sum(
            f.unresolved_stalls for f in self.in_fifos.values()
        ) + sum(f.unresolved_stalls for f in self.out_fifos.values())
