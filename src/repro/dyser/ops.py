"""Functional-unit operations available inside the DySER fabric.

DySER functional units implement plain computation (no memory access, no
control flow — that stays on the host core, per the access/execute
decoupling).  Each op carries:

- the *capability* an FU must have to host it (used by the heterogeneous
  capability map and the spatial scheduler), and
- its pipeline latency in fabric cycles (used by the timing model).

Evaluation semantics match the host ISA exactly so a region computes the
same values whether it runs on the core or in the fabric.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.cpu.regfile import wrap64


class FuCapability(enum.Enum):
    """Hardware capability classes for heterogeneous FUs."""

    ALU = "alu"        # int add/sub/logic/shift/compare/select
    MUL = "mul"        # int multiply
    FP = "fp"          # fp add/sub/mul/compare/select/convert/min/max
    FPDIV = "fpdiv"    # fp divide and sqrt (also int div/rem)


class FuOp(enum.Enum):
    """Operations a DySER FU can compute."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SEQ = "seq"
    MIN = "min"
    MAX = "max"
    SEL = "sel"
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FNEG = "fneg"
    FABS = "fabs"
    FMIN = "fmin"
    FMAX = "fmax"
    FLT = "flt"
    FLE = "fle"
    FEQ = "feq"
    FSEL = "fsel"
    I2F = "i2f"
    F2I = "f2i"


@dataclass(frozen=True)
class FuOpInfo:
    op: FuOp
    capability: FuCapability
    arity: int
    latency: int


def _shift_amount(b: int) -> int:
    return int(b) & 63


def _srl(a: int, b: int) -> int:
    return wrap64((int(a) & ((1 << 64) - 1)) >> _shift_amount(b))


def int_div(a: int, b: int) -> int:
    """Truncating signed division; divide-by-zero yields all-ones."""
    if b == 0:
        return -1
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def int_rem(a: int, b: int) -> int:
    """Remainder matching :func:`int_div` (sign of the dividend)."""
    if b == 0:
        return a
    return a - int_div(a, b) * b


_EVAL = {
    FuOp.ADD: lambda a, b: wrap64(int(a) + int(b)),
    FuOp.SUB: lambda a, b: wrap64(int(a) - int(b)),
    FuOp.MUL: lambda a, b: wrap64(int(a) * int(b)),
    FuOp.DIV: lambda a, b: wrap64(int_div(int(a), int(b))),
    FuOp.REM: lambda a, b: wrap64(int_rem(int(a), int(b))),
    FuOp.AND: lambda a, b: wrap64(int(a) & int(b)),
    FuOp.OR: lambda a, b: wrap64(int(a) | int(b)),
    FuOp.XOR: lambda a, b: wrap64(int(a) ^ int(b)),
    FuOp.SLL: lambda a, b: wrap64(int(a) << _shift_amount(b)),
    FuOp.SRL: _srl,
    FuOp.SRA: lambda a, b: wrap64(int(a) >> _shift_amount(b)),
    FuOp.SLT: lambda a, b: 1 if int(a) < int(b) else 0,
    FuOp.SEQ: lambda a, b: 1 if int(a) == int(b) else 0,
    FuOp.MIN: lambda a, b: min(int(a), int(b)),
    FuOp.MAX: lambda a, b: max(int(a), int(b)),
    FuOp.SEL: lambda c, a, b: a if c else b,
    FuOp.FADD: lambda a, b: float(a) + float(b),
    FuOp.FSUB: lambda a, b: float(a) - float(b),
    FuOp.FMUL: lambda a, b: float(a) * float(b),
    FuOp.FDIV: lambda a, b: float(a) / float(b) if b else math.inf,
    FuOp.FSQRT: lambda a: math.sqrt(a) if a >= 0.0 else math.nan,
    FuOp.FNEG: lambda a: -float(a),
    FuOp.FABS: lambda a: abs(float(a)),
    FuOp.FMIN: lambda a, b: min(float(a), float(b)),
    FuOp.FMAX: lambda a, b: max(float(a), float(b)),
    FuOp.FLT: lambda a, b: 1 if float(a) < float(b) else 0,
    FuOp.FLE: lambda a, b: 1 if float(a) <= float(b) else 0,
    FuOp.FEQ: lambda a, b: 1 if float(a) == float(b) else 0,
    FuOp.FSEL: lambda c, a, b: a if c else b,
    FuOp.I2F: lambda a: float(int(a)),
    FuOp.F2I: lambda a: wrap64(int(a)),
}


def _build_info() -> dict[FuOp, FuOpInfo]:
    C = FuCapability
    caps = {
        **{op: C.ALU for op in (
            FuOp.ADD, FuOp.SUB, FuOp.AND, FuOp.OR, FuOp.XOR, FuOp.SLL,
            FuOp.SRL, FuOp.SRA, FuOp.SLT, FuOp.SEQ, FuOp.MIN, FuOp.MAX,
            FuOp.SEL)},
        FuOp.MUL: C.MUL,
        FuOp.DIV: C.FPDIV,
        FuOp.REM: C.FPDIV,
        **{op: C.FP for op in (
            FuOp.FADD, FuOp.FSUB, FuOp.FMUL, FuOp.FNEG, FuOp.FABS,
            FuOp.FMIN, FuOp.FMAX, FuOp.FLT, FuOp.FLE, FuOp.FEQ,
            FuOp.FSEL, FuOp.I2F, FuOp.F2I)},
        FuOp.FDIV: C.FPDIV,
        FuOp.FSQRT: C.FPDIV,
    }
    latency = {
        **{op: 1 for op in FuOp},
        FuOp.MUL: 2, FuOp.DIV: 8, FuOp.REM: 8,
        FuOp.FADD: 2, FuOp.FSUB: 2, FuOp.FMUL: 2,
        FuOp.FMIN: 2, FuOp.FMAX: 2,
        FuOp.FDIV: 8, FuOp.FSQRT: 8,
        FuOp.I2F: 2, FuOp.F2I: 2,
    }
    arity = {op: _EVAL[op].__code__.co_argcount for op in FuOp}
    return {
        op: FuOpInfo(op, caps[op], arity[op], latency[op]) for op in FuOp
    }


#: Static metadata for every fabric op.
FU_OP_INFO: dict[FuOp, FuOpInfo] = _build_info()


def evaluate(op: FuOp, *operands):
    """Compute ``op`` on ``operands`` with host-ISA-identical semantics."""
    return _EVAL[op](*operands)


def capability_of(op: FuOp) -> FuCapability:
    return FU_OP_INFO[op].capability


def latency_of(op: FuOp) -> int:
    return FU_OP_INFO[op].latency
