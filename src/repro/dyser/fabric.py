"""DySER fabric topology: the checkerboard of FUs and switches.

Geometry (matching the HPCA 2011 microarchitecture): a ``width`` x
``height`` grid of functional units embedded in a ``(width+1)`` x
``(height+1)`` grid of circuit-switched switches.  FU ``(x, y)`` reads its
operands from its corner switches ``(x, y)``, ``(x+1, y)`` and ``(x, y+1)``
and writes its result into the south-east corner switch ``(x+1, y+1)``,
giving configurations a natural north-west to south-east flow.

Input ports sit on the north and west edge switches; output ports on the
south and east edges.  The fabric is heterogeneous: every FU has the ALU
capability, alternate FUs add an integer multiplier, FP capability covers
half the grid, and one FU per quadrant provides divide/sqrt — a capability
*profile* chosen to mirror the prototype's mix and easily replaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.dyser.ops import FuCapability

Coord = tuple[int, int]


@dataclass(frozen=True)
class FabricGeometry:
    """Size and port arrangement of a fabric instance.

    ``ports_per_edge_switch`` models the wide vector port interface: each
    edge switch multiplexes that many logical ports onto its injection
    link (the HPCA'11 design exposes more named ports than edge switches
    for exactly this reason).
    """

    width: int = 8
    height: int = 8
    ports_per_edge_switch: int = 2

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigurationError("fabric must be at least 1x1")
        if self.ports_per_edge_switch < 1:
            raise ConfigurationError("need at least one port per switch")

    @property
    def num_fus(self) -> int:
        return self.width * self.height

    @property
    def switch_cols(self) -> int:
        return self.width + 1

    @property
    def switch_rows(self) -> int:
        return self.height + 1

    @property
    def num_switches(self) -> int:
        return self.switch_cols * self.switch_rows

    def fus(self) -> list[Coord]:
        return [(x, y) for y in range(self.height) for x in range(self.width)]

    def switches(self) -> list[Coord]:
        return [
            (x, y)
            for y in range(self.switch_rows)
            for x in range(self.switch_cols)
        ]

    def fu_input_switches(self, fu: Coord) -> list[Coord]:
        x, y = fu
        return [(x, y), (x + 1, y), (x, y + 1)]

    def fu_output_switch(self, fu: Coord) -> Coord:
        x, y = fu
        return (x + 1, y + 1)

    def switch_neighbors(self, sw: Coord) -> list[Coord]:
        """Switches reachable in one hop (E, S, W, N order)."""
        x, y = sw
        candidates = [(x + 1, y), (x, y + 1), (x - 1, y), (x, y - 1)]
        return [
            (cx, cy)
            for cx, cy in candidates
            if 0 <= cx < self.switch_cols and 0 <= cy < self.switch_rows
        ]

    # -- ports -------------------------------------------------------------

    def input_port_switches(self) -> list[Coord]:
        """Edge switch of each input port, in port-number order.

        Ports run along the north edge west-to-east, then down the west
        edge (skipping the shared corner); the whole sequence repeats
        ``ports_per_edge_switch`` times.
        """
        north = [(x, 0) for x in range(self.switch_cols)]
        west = [(0, y) for y in range(1, self.switch_rows)]
        return (north + west) * self.ports_per_edge_switch

    def output_port_switches(self) -> list[Coord]:
        """South edge west-to-east, then east edge north-to-south."""
        south = [(x, self.height) for x in range(self.switch_cols)]
        east = [(self.width, y) for y in range(self.switch_rows - 1)]
        return (south + east) * self.ports_per_edge_switch

    @property
    def num_input_ports(self) -> int:
        return len(self.input_port_switches())

    @property
    def num_output_ports(self) -> int:
        return len(self.output_port_switches())


def default_capabilities(geometry: FabricGeometry) -> dict[Coord, set[FuCapability]]:
    """The prototype-flavoured heterogeneous capability profile.

    Every FU does integer ALU work; half add an integer multiplier;
    three quarters handle FP multiply-add (the prototype targets FP
    throughput kernels); divide/sqrt units are scarce (one per 4x2
    neighbourhood) because they dominate FU area.
    """
    caps: dict[Coord, set[FuCapability]] = {}
    for x, y in geometry.fus():
        fu_caps = {FuCapability.ALU}
        if (x + y) % 2 == 0:
            fu_caps.add(FuCapability.MUL)
        if y % 2 == 1 or x % 2 == 0 or geometry.height == 1:
            fu_caps.add(FuCapability.FP)
        if x % 4 == 1 and y % 2 == 1:
            fu_caps.add(FuCapability.FPDIV)
        caps[(x, y)] = fu_caps
    # Guarantee at least one FU of every capability even on tiny fabrics.
    all_caps = set().union(*caps.values())
    for needed in FuCapability:
        if needed not in all_caps:
            caps[next(iter(sorted(caps)))].add(needed)
    return caps


def uniform_capabilities(geometry: FabricGeometry) -> dict[Coord, set[FuCapability]]:
    """Every FU can do everything (upper-bound / testing profile)."""
    return {fu: set(FuCapability) for fu in geometry.fus()}


@dataclass
class Fabric:
    """A fabric instance: geometry plus a per-FU capability map."""

    geometry: FabricGeometry = field(default_factory=FabricGeometry)
    capabilities: dict[Coord, set[FuCapability]] | None = None
    switch_delay: int = 1          # cycles per switch hop

    def __post_init__(self) -> None:
        if self.capabilities is None:
            self.capabilities = default_capabilities(self.geometry)
        missing = set(self.geometry.fus()) - set(self.capabilities)
        if missing:
            raise ConfigurationError(f"FUs without capabilities: {missing}")

    def fus_with(self, capability: FuCapability) -> list[Coord]:
        return [
            fu for fu in self.geometry.fus()
            if capability in self.capabilities[fu]
        ]

    def supports(self, fu: Coord, capability: FuCapability) -> bool:
        return capability in self.capabilities[fu]

    def describe(self) -> str:
        g = self.geometry
        lines = [
            f"fabric {g.width}x{g.height}: {g.num_fus} FUs, "
            f"{g.num_switches} switches, "
            f"{g.num_input_ports} in-ports, {g.num_output_ports} out-ports"
        ]
        for cap in FuCapability:
            lines.append(f"  {cap.value}: {len(self.fus_with(cap))} FUs")
        return "\n".join(lines)
