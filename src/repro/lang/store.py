"""Content-addressed store for validated DSL kernels.

Submitted kernels are named by content: ``dsl:<sha256[:16]>`` of the
canonical AST (see :meth:`~repro.lang.nodes.KernelSpec.kernel_hash`).
The store persists the *source text* keyed by that handle so any
process — engine pool workers, ``repro serve`` shards, a fresh CLI —
can resolve a ``dsl:`` workload name by re-validating and re-lowering
the stored source.  Entries are immutable (same name ⟺ same content),
so a shared directory needs no coherence protocol and the last writer
wins with identical bytes.

Resolution order for the store root:

1. ``$REPRO_KERNEL_DIR``;
2. ``<artifact cache root>/kernels`` (see
   :func:`repro.engine.cache.default_cache_dir`).

:func:`set_default_kernel_dir` pins the root via the environment so
forked worker processes inherit the same resolution.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro.errors import WorkloadError
from repro.lang import nodes

KERNEL_DIR_ENV = "REPRO_KERNEL_DIR"

#: Serialization format tag for store entries.
STORE_FORMAT = "repro-kernel-dsl-v1"

#: Prefix of suite names that resolve through the store.
DSL_PREFIX = "dsl:"


def default_kernel_dir() -> pathlib.Path:
    env = os.environ.get(KERNEL_DIR_ENV)
    if env:
        return pathlib.Path(env)
    from repro.engine.cache import default_cache_dir

    return default_cache_dir() / "kernels"


def set_default_kernel_dir(path: str | os.PathLike) -> None:
    """Pin the store root for this process *and* forked children."""
    os.environ[KERNEL_DIR_ENV] = str(path)


class KernelStore:
    """Directory of ``<hash16>.json`` entries, one per kernel."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = (pathlib.Path(root) if root is not None
                     else default_kernel_dir())

    def path_for(self, workload_name: str) -> pathlib.Path:
        if not workload_name.startswith(DSL_PREFIX):
            raise WorkloadError(
                f"not a DSL workload name: {workload_name!r}")
        return self.root / f"{workload_name[len(DSL_PREFIX):]}.json"

    def put(self, source: str, spec: nodes.KernelSpec) -> dict:
        """Persist a *validated* kernel; returns the JSON entry."""
        entry = {
            "format": STORE_FORMAT,
            "kernel_hash": spec.kernel_hash,
            "workload": spec.workload_name,
            "name": spec.name,
            "source": source,
        }
        path = self.path_for(spec.workload_name)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            _unlink_quietly(tmp)
            raise
        return entry

    def load_source(self, workload_name: str) -> str | None:
        """The stored source for a ``dsl:`` name, or None if absent."""
        path = self.path_for(workload_name)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise WorkloadError(
                f"corrupt kernel-store entry {path}: {exc}",
                workload=workload_name) from exc
        if entry.get("format") != STORE_FORMAT:
            raise WorkloadError(
                f"unknown kernel-store format {entry.get('format')!r}",
                workload=workload_name)
        source = entry.get("source")
        if not isinstance(source, str):
            raise WorkloadError(
                f"kernel-store entry {path} has no source",
                workload=workload_name)
        return source

    def names(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(DSL_PREFIX + p.stem
                      for p in self.root.glob("*.json"))


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def load_workload(workload_name: str,
                  store: KernelStore | None = None):
    """Resolve a ``dsl:`` name into a lowered Workload, or None.

    Re-validates the stored source end to end (the store is data, not
    trusted code) and verifies the content address still matches, so a
    tampered entry can never run under a stale hash.
    """
    from repro.lang.lower import lower_spec
    from repro.lang.validate import check_source

    store = store or KernelStore()
    source = store.load_source(workload_name)
    if source is None:
        return None
    spec, report = check_source(source)
    if spec is None:
        raise WorkloadError(
            f"stored kernel {workload_name!r} no longer validates: "
            f"{report.summary()}",
            workload=workload_name)
    if spec.workload_name != workload_name:
        raise WorkloadError(
            f"kernel-store entry {workload_name!r} hashes to "
            f"{spec.workload_name!r}; refusing the mismatched content",
            workload=workload_name)
    return lower_spec(spec)
