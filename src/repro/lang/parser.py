"""Lexer + recursive-descent parser for the kernel DSL.

Grammar::

    kernel    := "kernel" IDENT "{" header* stmt* "}"
    header    := size | param | "work" "=" expr ";"
               | "flops" "=" NUMBER ";"
    size      := "size" IDENT "=" (table | expr) ";"
    table     := "{" IDENT ":" INT ("," IDENT ":" INT)* "}"
    param     := ("in" | "out") type IDENT
                 ( "[" expr "]" ("=" init)? | "=" expr )? ";"
    init      := IDENT "(" numbers? ")"
    type      := "int" | "float"
    stmt      := decl | assign ";" | if | for | while | dyser
               | "break" ";" | "continue" ";"
    decl      := type IDENT "=" expr ";"
    assign    := lvalue "=" expr
    lvalue    := IDENT | IDENT "[" expr "]"
    if        := "if" "(" expr ")" block ("else" (block | if))?
    for       := "for" "(" (decl | assign ";") expr ";" assign ")" block
    while     := "while" "(" expr ")" block
    dyser     := "dyser" block
    block     := "{" stmt* "}"
    expr      := precedence climbing over
                 ||  &&  (== !=)  (< <= > >=)  (+ -)  (* / %)
                 unary (- !)  primary
    primary   := NUMBER | IDENT | IDENT "[" expr "]"
               | IDENT "(" args ")" | "(" expr ")"

Deliberately a *subset* of the kernel language (no bit ops, no shifts)
plus the header forms and the ``dyser { }`` invoke-region construct.
``//`` comments and whitespace are insignificant: the content hash is
taken over the AST, so formatting never changes a kernel's identity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexerError, ParseError
from repro.lang import nodes

_KEYWORDS = frozenset({
    "kernel", "size", "in", "out", "work", "flops", "int", "float",
    "if", "else", "for", "while", "break", "continue", "dyser",
})

#: Multi-character operators, longest first.
_OPS2 = ("||", "&&", "==", "!=", "<=", ">=")
_OPS1 = "{}()[],;:=<>+-*/%!"

_PRECEDENCE = {
    "||": 1, "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


@dataclass(frozen=True)
class Token:
    kind: str        # "ident" | "keyword" | "int" | "float" | "op" | "eof"
    text: str
    line: int
    col: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line, col, i, n = 1, 1, 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line, col, i = line + 1, 1, i + 1
            continue
        if ch in " \t\r":
            i, col = i + 1, col + 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in _KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            col += j - i
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n
                            and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            tokens.append(Token("float" if is_float else "int", text,
                                start_line, start_col))
            col += j - i
            i = j
            continue
        two = source[i:i + 2]
        if two in _OPS2:
            tokens.append(Token("op", two, start_line, start_col))
            i, col = i + 2, col + 2
            continue
        if ch in _OPS1:
            tokens.append(Token("op", ch, start_line, start_col))
            i, col = i + 1, col + 1
            continue
        raise LexerError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens


class Parser:
    """Hand-rolled recursive descent over the token stream."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.cur.text == text and self.cur.kind in ("op", "keyword")

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            self.fail(f"expected {text!r}, found {self.cur.text!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.cur.kind != "ident":
            self.fail(f"expected identifier, found {self.cur.text!r}")
        return self.advance()

    def fail(self, message: str) -> None:
        raise ParseError(message, self.cur.line, self.cur.col)

    # -- kernel ---------------------------------------------------------

    def parse_kernel(self) -> nodes.KernelSpec:
        self.expect("kernel")
        name = self.expect_ident().text
        self.expect("{")
        sizes: list[nodes.SizeDecl] = []
        params: list[nodes.ParamDecl] = []
        work: nodes.Expr | None = None
        flops = 0.0
        while self.cur.text in ("size", "in", "out", "work", "flops"):
            if self.accept("size"):
                sizes.append(self._size_decl())
            elif self.check("in") or self.check("out"):
                params.append(self._param_decl())
            elif self.accept("work"):
                self.expect("=")
                work = self.parse_expr()
                self.expect(";")
            else:
                self.accept("flops")
                self.expect("=")
                flops = float(self._number())
                self.expect(";")
        body = []
        while not self.check("}"):
            if self.cur.kind == "eof":
                self.fail("unterminated kernel body")
            body.append(self.parse_stmt())
        self.expect("}")
        if self.cur.kind != "eof":
            self.fail(f"trailing input after kernel: {self.cur.text!r}")
        return nodes.KernelSpec(name=name, sizes=tuple(sizes),
                                params=tuple(params), body=tuple(body),
                                work=work, flops=flops)

    def _number(self) -> float:
        negate = self.accept("-")
        tok = self.cur
        if tok.kind not in ("int", "float"):
            self.fail(f"expected number, found {tok.text!r}")
        self.advance()
        value = float(tok.text)
        return -value if negate else value

    def _size_decl(self) -> nodes.SizeDecl:
        tok = self.expect_ident()
        self.expect("=")
        if self.check("{"):
            self.expect("{")
            table = []
            while True:
                scale = self.expect_ident().text
                self.expect(":")
                num = self.cur
                if num.kind != "int":
                    self.fail(f"scale sizes must be integer literals, "
                              f"found {num.text!r}")
                self.advance()
                table.append((scale, int(num.text)))
                if not self.accept(","):
                    break
            self.expect("}")
            self.expect(";")
            return nodes.SizeDecl(ident=tok.text, table=tuple(table),
                                  line=tok.line, col=tok.col)
        expr = self.parse_expr()
        self.expect(";")
        return nodes.SizeDecl(ident=tok.text, expr=expr,
                              line=tok.line, col=tok.col)

    def _param_decl(self) -> nodes.ParamDecl:
        is_out = self.cur.text == "out"
        self.advance()                      # "in" or "out"
        if not (self.check("int") or self.check("float")):
            self.fail(f"expected parameter type, found {self.cur.text!r}")
        ptype = self.advance().text
        tok = self.expect_ident()
        if self.accept("["):
            length = self.parse_expr()
            self.expect("]")
            init: nodes.InitSpec | None = None
            if self.accept("="):
                init = self._init_spec()
            self.expect(";")
            return nodes.ParamDecl(ident=tok.text, type=ptype,
                                   is_out=is_out, is_array=True,
                                   length=length, init=init,
                                   line=tok.line, col=tok.col)
        value: nodes.Expr | None = None
        if self.accept("="):
            value = self.parse_expr()
        self.expect(";")
        return nodes.ParamDecl(ident=tok.text, type=ptype, is_out=is_out,
                               is_array=False, value=value,
                               line=tok.line, col=tok.col)

    def _init_spec(self) -> nodes.InitSpec:
        tok = self.expect_ident()
        self.expect("(")
        args: list[nodes.Expr] = []
        if not self.check(")"):
            args.append(self.parse_expr())
            while self.accept(","):
                args.append(self.parse_expr())
        self.expect(")")
        return nodes.InitSpec(fn=tok.text, args=tuple(args),
                              line=tok.line, col=tok.col)

    # -- statements -----------------------------------------------------

    def parse_block(self) -> tuple:
        self.expect("{")
        stmts = []
        while not self.check("}"):
            if self.cur.kind == "eof":
                self.fail("unterminated block")
            stmts.append(self.parse_stmt())
        self.expect("}")
        return tuple(stmts)

    def parse_stmt(self) -> nodes.Stmt:
        tok = self.cur
        if self.check("int") or self.check("float"):
            return self._decl()
        if self.accept("if"):
            return self._if(tok)
        if self.accept("for"):
            return self._for(tok)
        if self.accept("while"):
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            body = self.parse_block()
            return nodes.While(cond=cond, body=body,
                               line=tok.line, col=tok.col)
        if self.accept("dyser"):
            body = self.parse_block()
            return nodes.DyserBlock(body=body, line=tok.line, col=tok.col)
        if self.accept("break"):
            self.expect(";")
            return nodes.Break(line=tok.line, col=tok.col)
        if self.accept("continue"):
            self.expect(";")
            return nodes.Continue(line=tok.line, col=tok.col)
        stmt = self._assign()
        self.expect(";")
        return stmt

    def _decl(self) -> nodes.Decl:
        dtype = self.advance().text
        tok = self.expect_ident()
        self.expect("=")
        expr = self.parse_expr()
        self.expect(";")
        return nodes.Decl(type=dtype, ident=tok.text, expr=expr,
                          line=tok.line, col=tok.col)

    def _assign(self) -> nodes.Assign:
        tok = self.expect_ident()
        target: nodes.Name | nodes.Index
        if self.accept("["):
            index = self.parse_expr()
            self.expect("]")
            target = nodes.Index(ident=tok.text, index=index,
                                 line=tok.line, col=tok.col)
        else:
            target = nodes.Name(ident=tok.text, line=tok.line, col=tok.col)
        self.expect("=")
        expr = self.parse_expr()
        return nodes.Assign(target=target, expr=expr,
                            line=tok.line, col=tok.col)

    def _if(self, tok: Token) -> nodes.If:
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_block()
        orelse: tuple = ()
        if self.accept("else"):
            if self.check("if"):
                iftok = self.advance()
                orelse = (self._if(iftok),)
            else:
                orelse = self.parse_block()
        return nodes.If(cond=cond, then=then, orelse=orelse,
                        line=tok.line, col=tok.col)

    def _for(self, tok: Token) -> nodes.For:
        self.expect("(")
        init: nodes.Decl | nodes.Assign
        if self.check("int") or self.check("float"):
            init = self._decl()         # consumes the ";"
        else:
            init = self._assign()
            self.expect(";")
        cond = self.parse_expr()
        self.expect(";")
        step = self._assign()
        self.expect(")")
        body = self.parse_block()
        return nodes.For(init=init, cond=cond, step=step, body=body,
                         line=tok.line, col=tok.col)

    # -- expressions ----------------------------------------------------

    def parse_expr(self, min_prec: int = 1) -> nodes.Expr:
        lhs = self._unary()
        while True:
            op = self.cur.text
            prec = _PRECEDENCE.get(op) if self.cur.kind == "op" else None
            if prec is None or prec < min_prec:
                return lhs
            tok = self.advance()
            rhs = self.parse_expr(prec + 1)
            lhs = nodes.Binary(op=op, lhs=lhs, rhs=rhs,
                               line=tok.line, col=tok.col)

    def _unary(self) -> nodes.Expr:
        tok = self.cur
        if self.accept("-"):
            return nodes.Unary(op="-", operand=self._unary(),
                               line=tok.line, col=tok.col)
        if self.accept("!"):
            return nodes.Unary(op="!", operand=self._unary(),
                               line=tok.line, col=tok.col)
        return self._primary()

    def _primary(self) -> nodes.Expr:
        tok = self.cur
        if tok.kind == "int":
            self.advance()
            return nodes.Num(value=int(tok.text), type="int",
                             line=tok.line, col=tok.col)
        if tok.kind == "float":
            self.advance()
            return nodes.Num(value=float(tok.text), type="float",
                             line=tok.line, col=tok.col)
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok.kind == "keyword" and tok.text == "float":
            # float(e) cast: the one keyword allowed in call position.
            self.advance()
            self.expect("(")
            arg = self.parse_expr()
            self.expect(")")
            return nodes.Call(fn="float", args=(arg,),
                              line=tok.line, col=tok.col)
        if tok.kind != "ident":
            self.fail(f"expected expression, found {tok.text!r}")
        self.advance()
        if self.accept("["):
            index = self.parse_expr()
            self.expect("]")
            return nodes.Index(ident=tok.text, index=index,
                               line=tok.line, col=tok.col)
        if self.accept("("):
            args = []
            if not self.check(")"):
                args.append(self.parse_expr())
                while self.accept(","):
                    args.append(self.parse_expr())
            self.expect(")")
            return nodes.Call(fn=tok.text, args=tuple(args),
                              line=tok.line, col=tok.col)
        return nodes.Name(ident=tok.text, line=tok.line, col=tok.col)


def parse_kernel_source(source: str) -> nodes.KernelSpec:
    """Parse one DSL kernel; raises LexerError/ParseError on bad input."""
    return Parser(source).parse_kernel()
