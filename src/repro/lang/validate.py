"""Validation pipeline for DSL kernels: syntax → types/shapes → resources.

:func:`check_source` is the single fail-closed gate every entry point
(CLI ``repro kernel check``, ``POST /v2/kernels``, the fuzz oracle, the
suite's lazy ``dsl:`` loader) goes through.  It never raises on bad
input: every rejection is a structured RPR5xx diagnostic in the returned
:class:`~repro.analysis.diagnostics.DiagnosticReport`, so no worker is
ever burned on an ill-formed kernel and rejections render identically in
text, JSON and the service's 422 envelope.

The RPR5xx code bank (registered in :mod:`repro.analysis.diagnostics`):

===========  ==========================================================
``RPR500``   source failed to tokenize
``RPR501``   source failed to parse
``RPR510``   use of undefined name
``RPR511``   type mismatch
``RPR512``   array/scalar shape misuse
``RPR513``   write to read-only input
``RPR514``   integer division/modulo outside the validated subset
``RPR515``   output parameter never written
``RPR516``   unknown intrinsic or bad arity
``RPR517``   invalid size or parameter declaration
``RPR518``   duplicate declaration
``RPR519``   invalid input initializer
``RPR520``   dyser region exceeds fabric compute capacity
``RPR521``   dyser region live values exceed port capacity
``RPR522``   size table missing standard scales
``RPR523``   size expression not positive at some scale
``RPR524``   kernel declares no output parameter
``RPR525``   invalid dyser region structure
``RPR526``   break or continue outside a loop
``RPR540``   while loop trip count is data-dependent (warning)
===========  ==========================================================
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import DiagnosticReport
from repro.errors import LexerError, ParseError, WorkloadError
from repro.lang import nodes

_SOURCE = "lang"

#: Interpreter statement budget (see :mod:`repro.lang.interp`): part of
#: the trust model, documented here next to the static gates.
INTERP_STEP_BUDGET = 2_000_000


def _fabric_budget() -> tuple[int, int, int]:
    """(functional units, input ports, output ports) of the default
    8x8 prototype fabric the static resource lint checks against."""
    # Imported lazily: repro.dyser participates in the cpu<->dyser
    # import cycle and must not be pulled in at workloads import time.
    from repro.dyser import FabricGeometry

    geometry = FabricGeometry(8, 8)
    return (64, geometry.num_input_ports, geometry.num_output_ports)


def literal_value(expr: nodes.Expr) -> float | None:
    """Numeric literal value (allowing a leading unary minus), or None."""
    if isinstance(expr, nodes.Num):
        return float(expr.value)
    if isinstance(expr, nodes.Unary) and expr.op == "-":
        inner = literal_value(expr.operand)
        return None if inner is None else -inner
    return None


# -- size expressions ----------------------------------------------------


def _is_size_expr(expr: nodes.Expr, known: set[str]) -> bool:
    """Static size expressions: int literals, size names, ``+ - *``."""
    if isinstance(expr, nodes.Num):
        return expr.type == "int"
    if isinstance(expr, nodes.Name):
        return expr.ident in known
    if isinstance(expr, nodes.Binary):
        return (expr.op in ("+", "-", "*")
                and _is_size_expr(expr.lhs, known)
                and _is_size_expr(expr.rhs, known))
    return False


def eval_size(expr: nodes.Expr, env: dict[str, int]) -> int:
    """Evaluate a (validated) size expression."""
    if isinstance(expr, nodes.Num):
        return int(expr.value)
    if isinstance(expr, nodes.Name):
        return env[expr.ident]
    if isinstance(expr, nodes.Binary):
        lhs, rhs = eval_size(expr.lhs, env), eval_size(expr.rhs, env)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        return lhs * rhs
    raise WorkloadError(f"not a size expression: {expr!r}")


def declared_scales(spec: nodes.KernelSpec) -> tuple[str, ...]:
    """Scales every size table declares (standard ones first)."""
    tables = [dict(s.table) for s in spec.sizes if s.table]
    if not tables:
        return nodes.STANDARD_SCALES
    common = set(tables[0])
    for table in tables[1:]:
        common &= set(table)
    ordered = [s for s in nodes.STANDARD_SCALES if s in common]
    ordered += sorted(common - set(nodes.STANDARD_SCALES))
    return tuple(ordered)


def size_env(spec: nodes.KernelSpec, scale: str) -> dict[str, int]:
    """Resolve every declared size at ``scale`` (declaration order)."""
    env: dict[str, int] = {}
    for decl in spec.sizes:
        if decl.table:
            table = dict(decl.table)
            if scale not in table:
                raise WorkloadError(
                    f"unknown scale {scale!r}; have {sorted(table)}")
            env[decl.ident] = int(table[scale])
        else:
            assert decl.expr is not None
            env[decl.ident] = eval_size(decl.expr, env)
    return env


# -- the pipeline --------------------------------------------------------


def check_source(source: str, *, report: DiagnosticReport | None = None,
                 ) -> tuple[Optional[nodes.KernelSpec], DiagnosticReport]:
    """Parse + validate one DSL source.  Never raises on bad input.

    Returns ``(spec, report)``; ``spec`` is None (and ``report.ok`` is
    False) whenever the source must not run.
    """
    report = report if report is not None else DiagnosticReport(
        subject="kernel-dsl")
    try:
        spec = parse_source(source)
    except LexerError as exc:
        report.emit("RPR500", str(exc), source=_SOURCE,
                    line=exc.line, column=exc.column)
        return None, report
    except ParseError as exc:
        report.emit("RPR501", str(exc), source=_SOURCE,
                    line=exc.line, column=exc.column)
        return None, report
    report.subject = spec.name
    validate_spec(spec, report)
    return (spec if report.ok else None), report


def parse_source(source: str) -> nodes.KernelSpec:
    from repro.lang.parser import parse_kernel_source

    return parse_kernel_source(source)


def validate_spec(spec: nodes.KernelSpec,
                  report: DiagnosticReport) -> DiagnosticReport:
    """Type/shape check + resource lint; diagnostics into ``report``."""
    sizes = _check_header(spec, report)
    if not report.ok:
        return report
    _TypeChecker(spec, sizes, report).run()
    if report.ok:
        _lint_regions(spec, report)
    return report


# -- header --------------------------------------------------------------


def _check_header(spec: nodes.KernelSpec,
                  report: DiagnosticReport) -> set[str]:
    known: set[str] = set()
    for decl in spec.sizes:
        where = f"size {decl.ident}"
        if decl.ident in known:
            report.emit("RPR518", f"size {decl.ident!r} declared twice",
                        location=where, source=_SOURCE)
            continue
        if decl.table:
            table = dict(decl.table)
            missing = [s for s in nodes.STANDARD_SCALES if s not in table]
            if missing:
                report.emit(
                    "RPR522",
                    f"size {decl.ident!r} must define the standard "
                    f"scales; missing {missing}",
                    location=where, source=_SOURCE, missing=missing)
            bad = {s: v for s, v in table.items() if v <= 0}
            if bad:
                report.emit("RPR523",
                            f"size {decl.ident!r} must be positive at "
                            f"every scale; got {bad}",
                            location=where, source=_SOURCE)
        elif decl.expr is None or not _is_size_expr(decl.expr, known):
            report.emit("RPR517",
                        f"size {decl.ident!r} must be a scale table or "
                        "an expression over earlier sizes (+ - * only)",
                        location=where, source=_SOURCE)
        known.add(decl.ident)
    if not spec.sizes:
        report.emit("RPR517", "kernel declares no sizes",
                    location=spec.name, source=_SOURCE)
    if report.ok:
        # Derived sizes must stay positive at every declared scale.
        for scale in declared_scales(spec):
            env = size_env(spec, scale)
            for ident, value in env.items():
                if value <= 0:
                    report.emit(
                        "RPR523",
                        f"size {ident!r} is {value} at scale {scale!r}",
                        location=f"size {ident}", source=_SOURCE,
                        scale=scale)
    _check_params(spec, known, report)
    if spec.work is not None and not _is_size_expr(spec.work, known):
        report.emit("RPR517", "work must be a size expression",
                    location="work", source=_SOURCE)
    return known


_INIT_ARITY = {"uniform": 2, "randint": 2, "monotone": 1,
               "permutation": 0, "zeros": 0}
_INIT_ELEM_TYPE = {"uniform": "float", "randint": "int", "monotone": "int",
                   "permutation": "int", "zeros": None}


def _check_params(spec: nodes.KernelSpec, sizes: set[str],
                  report: DiagnosticReport) -> None:
    seen: set[str] = set(sizes)
    out_params = 0
    for param in spec.params:
        where = f"param {param.ident}"
        if param.ident in seen:
            report.emit("RPR518",
                        f"{param.ident!r} declared twice",
                        location=where, source=_SOURCE)
        seen.add(param.ident)
        if param.is_out:
            out_params += 1
            if not param.is_array:
                report.emit("RPR517",
                            "output parameters must be arrays",
                            location=where, source=_SOURCE)
                continue
            if param.init is not None and param.init.fn != "zeros":
                report.emit("RPR519",
                            "output arrays start zeroed; only zeros() "
                            "is a legal initializer",
                            location=where, source=_SOURCE)
        if param.is_array:
            if param.length is None or not _is_size_expr(
                    param.length, sizes):
                report.emit("RPR517",
                            f"array {param.ident!r} needs a static size "
                            "expression length",
                            location=where, source=_SOURCE)
            if not param.is_out:
                _check_init(param, sizes, report)
        else:
            if param.type != "int":
                report.emit("RPR517",
                            "scalar parameters must be int (pass floats "
                            "as 1-element arrays)",
                            location=where, source=_SOURCE)
            elif param.value is None or not _is_size_expr(
                    param.value, sizes):
                report.emit("RPR517",
                            f"scalar {param.ident!r} needs a size "
                            "expression value",
                            location=where, source=_SOURCE)
    if out_params == 0:
        report.emit("RPR524", "kernel declares no output parameter",
                    location=spec.name, source=_SOURCE)


def _check_init(param: nodes.ParamDecl, sizes: set[str],
                report: DiagnosticReport) -> None:
    where = f"param {param.ident}"
    init = param.init
    if init is None:
        report.emit("RPR519",
                    f"input array {param.ident!r} needs an initializer "
                    f"(one of {', '.join(nodes.INIT_FUNCTIONS)})",
                    location=where, source=_SOURCE)
        return
    if init.fn not in nodes.INIT_FUNCTIONS:
        report.emit("RPR519",
                    f"unknown initializer {init.fn!r}; have "
                    f"{', '.join(nodes.INIT_FUNCTIONS)}",
                    location=where, source=_SOURCE)
        return
    if len(init.args) != _INIT_ARITY[init.fn]:
        report.emit("RPR519",
                    f"{init.fn}() takes {_INIT_ARITY[init.fn]} "
                    f"argument(s), got {len(init.args)}",
                    location=where, source=_SOURCE)
        return
    want = _INIT_ELEM_TYPE[init.fn]
    if want is not None and param.type != want:
        report.emit("RPR519",
                    f"{init.fn}() initializes {want} arrays; "
                    f"{param.ident!r} is {param.type}",
                    location=where, source=_SOURCE)
        return
    if init.fn == "uniform":
        for arg in init.args:
            if literal_value(arg) is None:
                report.emit("RPR519",
                            "uniform() bounds must be numeric literals",
                            location=where, source=_SOURCE)
                return
    else:
        for arg in init.args:
            if not _is_size_expr(arg, sizes):
                report.emit("RPR519",
                            f"{init.fn}() bounds must be size "
                            "expressions",
                            location=where, source=_SOURCE)
                return


# -- body type checking ---------------------------------------------------


class _Sym:
    __slots__ = ("type", "is_array", "writable")

    def __init__(self, type_: str, *, is_array: bool = False,
                 writable: bool = False) -> None:
        self.type = type_
        self.is_array = is_array
        self.writable = writable


class _TypeChecker:
    """One pass over the body; poisoned types stop error cascades."""

    def __init__(self, spec: nodes.KernelSpec, sizes: set[str],
                 report: DiagnosticReport) -> None:
        self.spec = spec
        self.report = report
        self.scope: dict[str, _Sym] = {s: _Sym("int") for s in sizes}
        for p in spec.params:
            self.scope[p.ident] = _Sym(
                p.type, is_array=p.is_array,
                writable=bool(p.is_out and p.is_array))
        self.loop_depth = 0
        self.written_outs: set[str] = set()

    def run(self) -> None:
        for stmt in self.spec.body:
            self.stmt(stmt)
        for p in self.spec.params:
            if p.is_out and p.is_array and p.ident not in self.written_outs:
                self.report.emit(
                    "RPR515",
                    f"output {p.ident!r} is never written",
                    location=f"param {p.ident}", source=_SOURCE)

    def _at(self, node) -> str:
        return f"{node.line}:{node.col}"

    def fail(self, code: str, node, message: str) -> None:
        self.report.emit(code, message, location=self._at(node),
                         source=_SOURCE)

    # -- statements ---------------------------------------------------

    def stmt(self, stmt: nodes.Stmt) -> None:
        if isinstance(stmt, nodes.Decl):
            if stmt.ident in self.scope:
                self.fail("RPR518", stmt,
                          f"{stmt.ident!r} declared twice")
            got = self.expr(stmt.expr)
            if got is not None and got != stmt.type:
                self.fail("RPR511", stmt,
                          f"cannot initialize {stmt.type} "
                          f"{stmt.ident!r} from {got}")
            self.scope[stmt.ident] = _Sym(stmt.type, writable=True)
        elif isinstance(stmt, nodes.Assign):
            self.assign(stmt)
        elif isinstance(stmt, nodes.If):
            self.cond(stmt.cond)
            for s in stmt.then:
                self.stmt(s)
            for s in stmt.orelse:
                self.stmt(s)
        elif isinstance(stmt, nodes.For):
            if isinstance(stmt.init, nodes.Decl):
                self.stmt(stmt.init)
            else:
                self.assign(stmt.init)
            self.cond(stmt.cond)
            self.assign(stmt.step)
            self.loop_depth += 1
            for s in stmt.body:
                self.stmt(s)
            self.loop_depth -= 1
        elif isinstance(stmt, nodes.While):
            self.report.emit(
                "RPR540",
                "while loop trip count is data-dependent; the "
                f"interpreter budget ({INTERP_STEP_BUDGET} steps) "
                "applies",
                location=self._at(stmt), source=_SOURCE)
            self.cond(stmt.cond)
            self.loop_depth += 1
            for s in stmt.body:
                self.stmt(s)
            self.loop_depth -= 1
        elif isinstance(stmt, (nodes.Break, nodes.Continue)):
            if self.loop_depth == 0:
                self.fail("RPR526", stmt,
                          "break/continue outside a loop")
        elif isinstance(stmt, nodes.DyserBlock):
            for s in stmt.body:
                self.stmt(s)

    def assign(self, stmt: nodes.Assign) -> None:
        got = self.expr(stmt.expr)
        target = stmt.target
        sym = self.scope.get(target.ident)
        if sym is None:
            self.fail("RPR510", target,
                      f"assignment to undefined name {target.ident!r}")
            return
        if isinstance(target, nodes.Index):
            if not sym.is_array:
                self.fail("RPR512", target,
                          f"{target.ident!r} is not an array")
                return
            idx = self.expr(target.index)
            if idx is not None and idx != "int":
                self.fail("RPR511", target, "array index must be int")
            if not sym.writable:
                self.fail("RPR513", target,
                          f"cannot write to input array "
                          f"{target.ident!r}")
                return
            self.written_outs.add(target.ident)
        else:
            if sym.is_array:
                self.fail("RPR512", target,
                          f"array {target.ident!r} needs an index")
                return
            if not sym.writable:
                self.fail("RPR513", target,
                          f"cannot write to read-only {target.ident!r}")
                return
        if got is not None and got != sym.type:
            self.fail("RPR511", stmt,
                      f"cannot assign {got} to {sym.type} "
                      f"{target.ident!r}")

    def cond(self, expr: nodes.Expr) -> None:
        got = self.expr(expr)
        if got is not None and got != "int":
            self.fail("RPR511", expr, "condition must be int")

    # -- expressions ---------------------------------------------------

    def expr(self, expr: nodes.Expr) -> str | None:
        """Returns "int"/"float", or None when already diagnosed."""
        if isinstance(expr, nodes.Num):
            return expr.type
        if isinstance(expr, nodes.Name):
            sym = self.scope.get(expr.ident)
            if sym is None:
                self.fail("RPR510", expr,
                          f"undefined name {expr.ident!r}")
                return None
            if sym.is_array:
                self.fail("RPR512", expr,
                          f"array {expr.ident!r} needs an index")
                return None
            return sym.type
        if isinstance(expr, nodes.Index):
            sym = self.scope.get(expr.ident)
            if sym is None:
                self.fail("RPR510", expr,
                          f"undefined name {expr.ident!r}")
                return None
            if not sym.is_array:
                self.fail("RPR512", expr,
                          f"{expr.ident!r} is not an array")
                return None
            idx = self.expr(expr.index)
            if idx is not None and idx != "int":
                self.fail("RPR511", expr, "array index must be int")
            return sym.type
        if isinstance(expr, nodes.Call):
            return self.call(expr)
        if isinstance(expr, nodes.Unary):
            got = self.expr(expr.operand)
            if got is None:
                return None
            if expr.op == "!" and got != "int":
                self.fail("RPR511", expr, "! needs an int operand")
                return None
            return got
        if isinstance(expr, nodes.Binary):
            return self.binary(expr)
        raise AssertionError(f"unhandled expr {expr!r}")

    def call(self, expr: nodes.Call) -> str | None:
        arity = {"sqrt": 1, "abs": 1, "float": 1, "min": 2, "max": 2}
        if expr.fn not in nodes.DSL_INTRINSICS:
            self.fail("RPR516", expr,
                      f"unknown intrinsic {expr.fn!r}; have "
                      f"{', '.join(nodes.DSL_INTRINSICS)}")
            return None
        if len(expr.args) != arity[expr.fn]:
            self.fail("RPR516", expr,
                      f"{expr.fn}() takes {arity[expr.fn]} "
                      f"argument(s), got {len(expr.args)}")
            return None
        types = [self.expr(a) for a in expr.args]
        if any(t is None for t in types):
            return None
        if expr.fn == "sqrt":
            if types[0] != "float":
                self.fail("RPR511", expr, "sqrt() needs a float")
                return None
            return "float"
        if expr.fn == "float":
            return "float"
        if expr.fn in ("min", "max") and types[0] != types[1]:
            self.fail("RPR511", expr,
                      f"{expr.fn}() operands must share a type")
            return None
        return types[0]

    def binary(self, expr: nodes.Binary) -> str | None:
        lhs, rhs = self.expr(expr.lhs), self.expr(expr.rhs)
        if lhs is None or rhs is None:
            return None
        op = expr.op
        if op == "%":
            self.fail("RPR514", expr,
                      "modulo is outside the validated DSL subset")
            return None
        if lhs != rhs:
            self.fail("RPR511", expr,
                      f"operands of {op!r} must share a type "
                      f"({lhs} vs {rhs}); use float() to convert")
            return None
        if op in ("&&", "||"):
            if lhs != "int":
                self.fail("RPR511", expr, f"{op!r} needs int operands")
                return None
            return "int"
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return "int"
        if op == "/":
            if lhs == "int":
                self.fail("RPR514", expr,
                          "integer division is outside the validated "
                          "DSL subset; use float() first")
                return None
            return "float"
        return lhs   # + - *


# -- dyser region resource lint -------------------------------------------


def _lint_regions(spec: nodes.KernelSpec,
                  report: DiagnosticReport) -> None:
    regions: list[nodes.DyserBlock] = []
    _collect_regions(spec.body, report, regions, inside=False)
    if not regions:
        return
    fus, in_ports, out_ports = _fabric_budget()
    for i, region in enumerate(regions):
        where = f"dyser.{i}"
        ops = _count_ops(region.body)
        if ops > fus:
            report.emit(
                "RPR520",
                f"region declares {ops} compute ops; the 8x8 fabric "
                f"has {fus} functional units",
                location=where, source=_SOURCE, ops=ops, capacity=fus)
        live_in, live_out = _live_values(region.body)
        if live_in > in_ports:
            report.emit(
                "RPR521",
                f"region needs {live_in} input values; the fabric "
                f"exposes {in_ports} input ports",
                location=where, source=_SOURCE,
                values=live_in, ports=in_ports)
        if live_out > out_ports:
            report.emit(
                "RPR521",
                f"region produces {live_out} output values; the "
                f"fabric exposes {out_ports} output ports",
                location=where, source=_SOURCE,
                values=live_out, ports=out_ports)


def _collect_regions(stmts, report: DiagnosticReport,
                     regions: list, *, inside: bool) -> None:
    for stmt in stmts:
        if isinstance(stmt, nodes.DyserBlock):
            if inside:
                report.emit("RPR525",
                            "dyser regions cannot nest",
                            location=f"{stmt.line}:{stmt.col}",
                            source=_SOURCE)
            else:
                regions.append(stmt)
            if _has_loop(stmt.body):
                report.emit(
                    "RPR525",
                    "dyser regions are acyclic dataflow; hoist loops "
                    "outside the region",
                    location=f"{stmt.line}:{stmt.col}", source=_SOURCE)
            _collect_regions(stmt.body, report, regions, inside=True)
        elif isinstance(stmt, nodes.If):
            _collect_regions(stmt.then, report, regions, inside=inside)
            _collect_regions(stmt.orelse, report, regions, inside=inside)
        elif isinstance(stmt, (nodes.For, nodes.While)):
            _collect_regions(stmt.body, report, regions, inside=inside)


def _has_loop(stmts) -> bool:
    for stmt in stmts:
        if isinstance(stmt, (nodes.For, nodes.While)):
            return True
        if isinstance(stmt, nodes.If):
            if _has_loop(stmt.then) or _has_loop(stmt.orelse):
                return True
        if isinstance(stmt, nodes.DyserBlock) and _has_loop(stmt.body):
            return True
    return False


def _count_ops(stmts) -> int:
    count = 0

    def walk_expr(expr: nodes.Expr) -> None:
        nonlocal count
        if isinstance(expr, (nodes.Binary, nodes.Unary, nodes.Call)):
            count += 1
        if isinstance(expr, nodes.Binary):
            walk_expr(expr.lhs)
            walk_expr(expr.rhs)
        elif isinstance(expr, nodes.Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, nodes.Call):
            for a in expr.args:
                walk_expr(a)
        elif isinstance(expr, nodes.Index):
            walk_expr(expr.index)

    def walk(stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (nodes.Decl, nodes.Assign)):
                walk_expr(stmt.expr)
                if isinstance(stmt, nodes.Assign) and isinstance(
                        stmt.target, nodes.Index):
                    walk_expr(stmt.target.index)
            elif isinstance(stmt, nodes.If):
                walk_expr(stmt.cond)
                walk(stmt.then)
                walk(stmt.orelse)
            elif isinstance(stmt, (nodes.For, nodes.While)):
                walk_expr(stmt.cond)
                walk(stmt.body)
            elif isinstance(stmt, nodes.DyserBlock):
                walk(stmt.body)

    walk(stmts)
    return count


def _live_values(stmts) -> tuple[int, int]:
    """(inbound, outbound) value count for a declared region.

    Inbound: distinct scalar names read before local definition plus
    every array-element load (each is one dsend on the access slice).
    Outbound: distinct scalar names written plus array-element stores.
    """
    local: set[str] = set()
    reads: set[str] = set()
    writes: set[str] = set()
    loads = 0
    stores = 0

    def walk_expr(expr: nodes.Expr) -> None:
        nonlocal loads
        if isinstance(expr, nodes.Name):
            if expr.ident not in local:
                reads.add(expr.ident)
        elif isinstance(expr, nodes.Index):
            loads += 1
            walk_expr(expr.index)
        elif isinstance(expr, nodes.Binary):
            walk_expr(expr.lhs)
            walk_expr(expr.rhs)
        elif isinstance(expr, nodes.Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, nodes.Call):
            for a in expr.args:
                walk_expr(a)

    def walk(stmts) -> None:
        nonlocal stores
        for stmt in stmts:
            if isinstance(stmt, nodes.Decl):
                walk_expr(stmt.expr)
                local.add(stmt.ident)
            elif isinstance(stmt, nodes.Assign):
                walk_expr(stmt.expr)
                if isinstance(stmt.target, nodes.Index):
                    walk_expr(stmt.target.index)
                    stores += 1
                else:
                    writes.add(stmt.target.ident)
            elif isinstance(stmt, nodes.If):
                walk_expr(stmt.cond)
                walk(stmt.then)
                walk(stmt.orelse)
            elif isinstance(stmt, (nodes.For, nodes.While)):
                walk_expr(stmt.cond)
                walk(stmt.body)
            elif isinstance(stmt, nodes.DyserBlock):
                walk(stmt.body)

    walk(stmts)
    return len(reads) + loads, len(writes - local) + stores
