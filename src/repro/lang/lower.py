"""Lowering: validated :class:`KernelSpec` → standard :class:`Workload`.

A lowered DSL kernel is indistinguishable from a built-in suite entry:

- the compute body pretty-prints to *kernel-language* source (the
  ``dyser { }`` regions inline — the co-designed compiler re-discovers
  them via its own region selection, which is what the access/execute
  validation already modelled);
- ``prepare`` generates inputs from the declared initializers with a
  seeded ``numpy`` RNG, computes expected outputs with the reference
  interpreter (:mod:`repro.lang.interp`), and returns a standard
  :class:`~repro.workloads.base.Instance`.

Because the result is a plain :class:`Workload`, everything downstream
— :class:`RunConfig`, ``JobSpec`` hashing, the artifact cache, all four
backends, the perf analyzer and the parity harnesses — applies without
modification.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import WorkloadError
from repro.lang import nodes
from repro.lang.interp import Interpreter
from repro.lang.validate import eval_size, literal_value, size_env
from repro.workloads.base import (
    IRREGULAR_DSL,
    Instance,
    Workload,
    allclose_check,
    exact_check,
)


# -- kernel-language pretty printer ---------------------------------------


def _expr_text(expr: nodes.Expr) -> str:
    if isinstance(expr, nodes.Num):
        if expr.type == "int":
            return str(int(expr.value))
        return repr(float(expr.value))
    if isinstance(expr, nodes.Name):
        return expr.ident
    if isinstance(expr, nodes.Index):
        return f"{expr.ident}[{_expr_text(expr.index)}]"
    if isinstance(expr, nodes.Call):
        args = ", ".join(_expr_text(a) for a in expr.args)
        return f"{expr.fn}({args})"
    if isinstance(expr, nodes.Unary):
        return f"({expr.op}{_expr_text(expr.operand)})"
    assert isinstance(expr, nodes.Binary)
    return f"({_expr_text(expr.lhs)} {expr.op} {_expr_text(expr.rhs)})"


def _assign_text(stmt: nodes.Assign) -> str:
    return f"{_expr_text(stmt.target)} = {_expr_text(stmt.expr)}"


def _stmt_lines(stmt: nodes.Stmt, indent: int) -> list[str]:
    pad = "    " * indent
    if isinstance(stmt, nodes.Decl):
        return [f"{pad}{stmt.type} {stmt.ident} = "
                f"{_expr_text(stmt.expr)};"]
    if isinstance(stmt, nodes.Assign):
        return [f"{pad}{_assign_text(stmt)};"]
    if isinstance(stmt, nodes.If):
        lines = [f"{pad}if ({_expr_text(stmt.cond)}) {{"]
        for s in stmt.then:
            lines.extend(_stmt_lines(s, indent + 1))
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for s in stmt.orelse:
                lines.extend(_stmt_lines(s, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, nodes.For):
        if isinstance(stmt.init, nodes.Decl):
            init = (f"{stmt.init.type} {stmt.init.ident} = "
                    f"{_expr_text(stmt.init.expr)};")
        else:
            init = f"{_assign_text(stmt.init)};"
        head = (f"{pad}for ({init} {_expr_text(stmt.cond)}; "
                f"{_assign_text(stmt.step)}) {{")
        lines = [head]
        for s in stmt.body:
            lines.extend(_stmt_lines(s, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, nodes.While):
        lines = [f"{pad}while ({_expr_text(stmt.cond)}) {{"]
        for s in stmt.body:
            lines.extend(_stmt_lines(s, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, nodes.Break):
        return [f"{pad}break;"]
    if isinstance(stmt, nodes.Continue):
        return [f"{pad}continue;"]
    assert isinstance(stmt, nodes.DyserBlock)
    lines = []
    for s in stmt.body:
        lines.extend(_stmt_lines(s, indent))
    return lines


def lowered_source(spec: nodes.KernelSpec) -> str:
    """Kernel-language source text for a validated spec."""
    params = []
    for p in spec.params:
        prefix = "out " if p.is_out else ""
        suffix = "[]" if p.is_array else ""
        params.append(f"{prefix}{p.type} {p.ident}{suffix}")
    lines = [f"kernel {spec.name}({', '.join(params)}) {{"]
    for stmt in spec.body:
        lines.extend(_stmt_lines(stmt, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- input generation ------------------------------------------------------


def _gen_array(param: nodes.ParamDecl, length: int,
               env: dict[str, int], rng: np.random.Generator) -> np.ndarray:
    init = param.init
    if param.is_out or init is None or init.fn == "zeros":
        dtype = np.float64 if param.type == "float" else np.int64
        return np.zeros(length, dtype=dtype)
    if init.fn == "uniform":
        lo, hi = (literal_value(a) for a in init.args)
        assert lo is not None and hi is not None
        return rng.uniform(lo, hi, size=length)
    if init.fn == "randint":
        lo, hi = (eval_size(a, env) for a in init.args)
        if hi <= lo:
            raise WorkloadError(
                f"randint({lo}, {hi}) is an empty range",
                code="RPR519", param=param.ident)
        return rng.integers(lo, hi, size=length, dtype=np.int64)
    if init.fn == "monotone":
        total = eval_size(init.args[0], env)
        if length < 2:
            raise WorkloadError(
                "monotone() arrays need length >= 2",
                code="RPR519", param=param.ident)
        inner = np.sort(rng.integers(0, total + 1, size=length - 2,
                                     dtype=np.int64))
        return np.concatenate(([0], inner, [total])).astype(np.int64)
    assert init.fn == "permutation"
    return rng.permutation(length).astype(np.int64)


def _make_prepare(spec: nodes.KernelSpec) -> Callable:
    def prepare(memory, scale: str, seed: int) -> Instance:
        env = size_env(spec, scale)
        rng = np.random.default_rng(seed)
        # Generate inputs in declaration order (deterministic RNG use).
        arrays: dict[str, np.ndarray] = {}
        scalars: dict[str, int] = {}
        for p in spec.params:
            if p.is_array:
                assert p.length is not None
                length = eval_size(p.length, env)
                arrays[p.ident] = _gen_array(p, length, env, rng)
            else:
                assert p.value is not None
                scalars[p.ident] = eval_size(p.value, env)

        # Expected outputs via the reference interpreter.  Arrays become
        # Python lists so interpreter arithmetic stays native int/float.
        ienv: dict[str, Any] = dict(env)
        ienv.update(scalars)
        for p in spec.params:
            if p.is_array:
                values = arrays[p.ident]
                ienv[p.ident] = (
                    [float(v) for v in values] if p.type == "float"
                    else [int(v) for v in values])
        Interpreter(ienv).run(spec)

        # Materialize simulator memory and the argument tuple.
        int_args: list[int] = []
        checks: list[Callable] = []
        for p in spec.params:
            if not p.is_array:
                int_args.append(scalars[p.ident])
                continue
            if p.is_out:
                address = memory.alloc(len(arrays[p.ident]))
                expected = np.asarray(
                    ienv[p.ident],
                    dtype=np.float64 if p.type == "float" else np.int64)
                if p.type == "float":
                    checks.append(
                        lambda mem, a=address, e=expected:
                        allclose_check(mem, a, e, rtol=1e-9))
                else:
                    checks.append(
                        lambda mem, a=address, e=expected:
                        exact_check(mem, a, e))
                address_val = address
            else:
                address_val = memory.alloc_numpy(arrays[p.ident])
            int_args.append(address_val)

        work = (eval_size(spec.work, env) if spec.work is not None
                else max(env.values()))
        return Instance(
            int_args=tuple(int_args),
            check=lambda mem: all(c(mem) for c in checks),
            work_items=work,
        )

    return prepare


def lower_spec(spec: nodes.KernelSpec, *, name: str | None = None,
               category: str = IRREGULAR_DSL,
               description: str | None = None) -> Workload:
    """Compile a validated spec into a standard :class:`Workload`.

    ``name`` defaults to the content-addressed handle
    (``dsl:<hash16>``); shipped kernels pass their declared name.
    """
    return Workload(
        name=name or spec.workload_name,
        category=category,
        description=description
        or f"DSL kernel {spec.name} ({spec.kernel_hash[:12]})",
        source=lowered_source(spec),
        prepare=_make_prepare(spec),
        flops_per_item=spec.flops,
    )
