"""``repro.lang`` — the validated kernel DSL.

A small, safely-interpretable textual language for submitting custom
kernels to the harness and the service without shipping Python code:

- :func:`parse_kernel_source` — recursive-descent parser producing a
  frozen, content-hashable :class:`KernelSpec` AST;
- :func:`check_source` — the fail-closed validation pipeline (syntax →
  type/shape check → fabric resource lint) emitting stable ``RPR5xx``
  diagnostics; nothing that fails it ever reaches a worker;
- :func:`lower_spec` — compiles a validated spec into the same
  :class:`~repro.workloads.base.Workload` form the built-in suite
  uses, so the engine cache, all backends, the perf analyzer and the
  parity harnesses apply unchanged;
- :class:`KernelStore` — content-addressed persistence keyed by
  ``dsl:<hash16>`` handles, shared across worker processes.

See DESIGN.md § "Kernel DSL" for the grammar and the trust model.
"""

from repro.lang.nodes import (
    DSL_INTRINSICS,
    INIT_FUNCTIONS,
    KernelSpec,
    STANDARD_SCALES,
)
from repro.lang.parser import parse_kernel_source
from repro.lang.validate import (
    INTERP_STEP_BUDGET,
    check_source,
    declared_scales,
    size_env,
    validate_spec,
)
from repro.lang.interp import Interpreter
from repro.lang.lower import IRREGULAR_DSL, lower_spec, lowered_source
from repro.lang.store import (
    DSL_PREFIX,
    KernelStore,
    default_kernel_dir,
    load_workload,
    set_default_kernel_dir,
)

__all__ = [
    "DSL_INTRINSICS",
    "DSL_PREFIX",
    "INIT_FUNCTIONS",
    "INTERP_STEP_BUDGET",
    "IRREGULAR_DSL",
    "Interpreter",
    "KernelSpec",
    "KernelStore",
    "STANDARD_SCALES",
    "check_source",
    "declared_scales",
    "default_kernel_dir",
    "load_workload",
    "lower_spec",
    "lowered_source",
    "parse_kernel_source",
    "set_default_kernel_dir",
    "size_env",
    "validate_spec",
]
