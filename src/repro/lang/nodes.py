"""Frozen AST for the kernel DSL (:mod:`repro.lang`).

A parsed kernel is a :class:`KernelSpec` — an immutable tree of plain
dataclasses.  Two properties matter:

- **Content-hashable.**  :meth:`KernelSpec.to_dict` is a canonical,
  JSON-safe view of the *semantics* of the kernel: source positions are
  deliberately excluded, so reformatting a kernel (whitespace, comments,
  line breaks) never changes :func:`kernel_hash`.  The hash keys the
  kernel store, the service's ``kernel_hash`` handle and the derived
  workload name.
- **Frozen.**  Every node is a frozen dataclass built from tuples, so a
  validated spec can be shared across threads and memoized safely.

Positions (``line``/``col``) ride along on every node for diagnostics
but use ``compare=False`` and are skipped by ``to_dict``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Union

#: Scale names every DSL kernel must define sizes for (mirrors the
#: harness' standard scales; extra scales are allowed on top).
STANDARD_SCALES = ("tiny", "small", "medium")

#: Input-initializer generators the DSL understands.
INIT_FUNCTIONS = ("uniform", "randint", "monotone", "permutation", "zeros")

#: Intrinsic calls allowed in DSL expressions (a validated subset of the
#: kernel language's intrinsics — integer division and bit ops are out).
DSL_INTRINSICS = ("abs", "min", "max", "sqrt", "float")


# -- expressions --------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """Integer or float literal (``type`` is ``"int"`` or ``"float"``)."""

    value: Union[int, float]
    type: str
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "num", "value": self.value, "type": self.type}


@dataclass(frozen=True)
class Name:
    ident: str
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "name", "ident": self.ident}


@dataclass(frozen=True)
class Index:
    """``array[expr]`` load (or store target, as an lvalue)."""

    ident: str
    index: "Expr"
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "index", "ident": self.ident,
                "index": self.index.to_dict()}


@dataclass(frozen=True)
class Call:
    """Intrinsic call (``min``, ``max``, ``abs``, ``sqrt``, ``float``)."""

    fn: str
    args: tuple
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "call", "fn": self.fn,
                "args": [a.to_dict() for a in self.args]}


@dataclass(frozen=True)
class Unary:
    op: str
    operand: "Expr"
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "unary", "op": self.op,
                "operand": self.operand.to_dict()}


@dataclass(frozen=True)
class Binary:
    op: str
    lhs: "Expr"
    rhs: "Expr"
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "binary", "op": self.op,
                "lhs": self.lhs.to_dict(), "rhs": self.rhs.to_dict()}


Expr = Union[Num, Name, Index, Call, Unary, Binary]


# -- statements ---------------------------------------------------------


@dataclass(frozen=True)
class Decl:
    """``int i = expr;`` — local variable declaration."""

    type: str
    ident: str
    expr: Expr
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "decl", "type": self.type, "ident": self.ident,
                "expr": self.expr.to_dict()}


@dataclass(frozen=True)
class Assign:
    """``lvalue = expr;`` where lvalue is a Name or Index node."""

    target: Union[Name, Index]
    expr: Expr
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "assign", "target": self.target.to_dict(),
                "expr": self.expr.to_dict()}


@dataclass(frozen=True)
class If:
    cond: Expr
    then: tuple
    orelse: tuple
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "if", "cond": self.cond.to_dict(),
                "then": [s.to_dict() for s in self.then],
                "orelse": [s.to_dict() for s in self.orelse]}


@dataclass(frozen=True)
class For:
    init: Union[Decl, Assign]
    cond: Expr
    step: Assign
    body: tuple
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "for", "init": self.init.to_dict(),
                "cond": self.cond.to_dict(), "step": self.step.to_dict(),
                "body": [s.to_dict() for s in self.body]}


@dataclass(frozen=True)
class While:
    cond: Expr
    body: tuple
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "while", "cond": self.cond.to_dict(),
                "body": [s.to_dict() for s in self.body]}


@dataclass(frozen=True)
class Break:
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "break"}


@dataclass(frozen=True)
class Continue:
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "continue"}


@dataclass(frozen=True)
class DyserBlock:
    """``dyser { ... }`` — declared offload intent.

    Lowering inlines the body (the co-designed compiler picks regions
    itself); validation checks the declared region against the default
    fabric's functional-unit and port budgets *before* any worker runs.
    """

    body: tuple
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "dyser", "body": [s.to_dict() for s in self.body]}


Stmt = Union[Decl, Assign, If, For, While, Break, Continue, DyserBlock]


# -- header declarations ------------------------------------------------


@dataclass(frozen=True)
class SizeDecl:
    """``size n = { tiny: 16, small: 48, medium: 160 };`` or a derived
    size ``size nnz = 4 * n;`` (expr over earlier sizes)."""

    ident: str
    table: tuple = ()        # ((scale, int), ...) — empty when derived
    expr: Expr | None = None
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "size", "ident": self.ident,
                "table": [list(p) for p in self.table],
                "expr": self.expr.to_dict() if self.expr else None}


@dataclass(frozen=True)
class InitSpec:
    """Input generator: ``uniform(lo, hi)``, ``randint(lo, hi)``,
    ``monotone(total)``, ``permutation()``, ``zeros()``.

    Arguments are expressions: literals for ``uniform`` bounds, size
    expressions for ``randint``/``monotone`` bounds (``randint(0, n)``).
    """

    fn: str
    args: tuple = ()
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {"kind": "init", "fn": self.fn,
                "args": [a.to_dict() for a in self.args]}


@dataclass(frozen=True)
class ParamDecl:
    """``in float vals[nnz] = uniform(-1.0, 1.0);`` / ``out float y[n];``
    / ``in int nrows = n;`` (scalar params are int size expressions)."""

    ident: str
    type: str                      # "int" | "float"
    is_out: bool
    is_array: bool
    length: Expr | None = None     # size expression (arrays only)
    init: InitSpec | None = None   # arrays: generator; scalars: None
    value: Expr | None = None      # scalar ints: size expression
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def to_dict(self) -> dict:
        return {
            "kind": "param", "ident": self.ident, "type": self.type,
            "out": self.is_out, "array": self.is_array,
            "length": self.length.to_dict() if self.length else None,
            "init": self.init.to_dict() if self.init else None,
            "value": self.value.to_dict() if self.value else None,
        }


@dataclass(frozen=True)
class KernelSpec:
    """One parsed DSL kernel: header + compute body."""

    name: str
    sizes: tuple = ()    # SizeDecl...
    params: tuple = ()   # ParamDecl...
    body: tuple = ()     # Stmt...
    work: Expr | None = None     # work_items size expression
    flops: float = 0.0           # flops per work item (reporting only)

    def to_dict(self) -> dict:
        return {
            "format": "repro-kernel-dsl-v1",
            "name": self.name,
            "sizes": [s.to_dict() for s in self.sizes],
            "params": [p.to_dict() for p in self.params],
            "body": [s.to_dict() for s in self.body],
            "work": self.work.to_dict() if self.work else None,
            "flops": self.flops,
        }

    @property
    def kernel_hash(self) -> str:
        """Stable content hash of the canonical AST (hex sha256).

        Positions are excluded, so formatting never changes identity.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @property
    def workload_name(self) -> str:
        """The suite-registry name a submitted kernel runs under."""
        return f"dsl:{self.kernel_hash[:16]}"
