"""Pure-Python reference interpreter over a validated KernelSpec.

This is the DSL's *numpy-reference* role: the lowered workload's
``prepare`` runs the interpreter over the freshly generated inputs to
produce the expected outputs the simulator run is checked against.  It
interprets exactly the AST that lowering prints, so expected values and
simulated values follow the same operation order.

Semantics of the validated subset are unambiguous: int arithmetic is
exact (the validator rejects integer division/modulo), float arithmetic
is IEEE double, comparisons and logical ops produce 0/1 ints.  A step
budget (:data:`~repro.lang.validate.INTERP_STEP_BUDGET`) bounds
data-dependent ``while`` loops: exceeding it raises a structured
:class:`~repro.errors.WorkloadError` instead of hanging a worker.
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import WorkloadError
from repro.lang import nodes
from repro.lang.validate import INTERP_STEP_BUDGET


class _BreakLoop(Exception):
    pass


class _ContinueLoop(Exception):
    pass


class Interpreter:
    """Execute a kernel body against a name -> value environment.

    Arrays are Python lists (mutated in place); scalars are int/float.
    """

    def __init__(self, env: dict[str, Any],
                 budget: int = INTERP_STEP_BUDGET) -> None:
        self.env = env
        self.budget = budget
        self.steps = 0

    def run(self, spec: nodes.KernelSpec) -> None:
        for stmt in spec.body:
            self.stmt(stmt)

    # -- statements -----------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.budget:
            raise WorkloadError(
                f"kernel exceeded the interpreter step budget "
                f"({self.budget}); data-dependent loops must terminate",
                code="RPR540", steps=self.steps)

    def stmt(self, stmt: nodes.Stmt) -> None:
        self._tick()
        if isinstance(stmt, nodes.Decl):
            self.env[stmt.ident] = self.expr(stmt.expr)
        elif isinstance(stmt, nodes.Assign):
            self.assign(stmt)
        elif isinstance(stmt, nodes.If):
            branch = stmt.then if self.expr(stmt.cond) else stmt.orelse
            for s in branch:
                self.stmt(s)
        elif isinstance(stmt, nodes.For):
            if isinstance(stmt.init, nodes.Decl):
                self.env[stmt.init.ident] = self.expr(stmt.init.expr)
            else:
                self.assign(stmt.init)
            while self.expr(stmt.cond):
                self._tick()
                try:
                    for s in stmt.body:
                        self.stmt(s)
                except _ContinueLoop:
                    pass
                except _BreakLoop:
                    break
                self.assign(stmt.step)
        elif isinstance(stmt, nodes.While):
            while self.expr(stmt.cond):
                self._tick()
                try:
                    for s in stmt.body:
                        self.stmt(s)
                except _ContinueLoop:
                    continue
                except _BreakLoop:
                    break
        elif isinstance(stmt, nodes.Break):
            raise _BreakLoop()
        elif isinstance(stmt, nodes.Continue):
            raise _ContinueLoop()
        elif isinstance(stmt, nodes.DyserBlock):
            for s in stmt.body:
                self.stmt(s)

    def assign(self, stmt: nodes.Assign) -> None:
        value = self.expr(stmt.expr)
        target = stmt.target
        if isinstance(target, nodes.Index):
            array = self.env[target.ident]
            index = self.expr(target.index)
            if not 0 <= index < len(array):
                raise WorkloadError(
                    f"{target.ident}[{index}] is out of bounds "
                    f"(length {len(array)})",
                    code="RPR512", index=index, length=len(array))
            array[index] = value
        else:
            self.env[target.ident] = value

    # -- expressions ----------------------------------------------------

    def expr(self, expr: nodes.Expr) -> Any:
        if isinstance(expr, nodes.Num):
            return expr.value
        if isinstance(expr, nodes.Name):
            return self.env[expr.ident]
        if isinstance(expr, nodes.Index):
            array = self.env[expr.ident]
            index = self.expr(expr.index)
            if not 0 <= index < len(array):
                raise WorkloadError(
                    f"{expr.ident}[{index}] is out of bounds "
                    f"(length {len(array)})",
                    code="RPR512", index=index, length=len(array))
            return array[index]
        if isinstance(expr, nodes.Call):
            args = [self.expr(a) for a in expr.args]
            if expr.fn == "sqrt":
                if args[0] < 0.0:
                    raise WorkloadError("sqrt of a negative value",
                                        code="RPR511", value=args[0])
                return math.sqrt(args[0])
            if expr.fn == "abs":
                return abs(args[0])
            if expr.fn == "float":
                return float(args[0])
            if expr.fn == "min":
                return min(args)
            return max(args)
        if isinstance(expr, nodes.Unary):
            value = self.expr(expr.operand)
            return -value if expr.op == "-" else int(not value)
        assert isinstance(expr, nodes.Binary)
        op = expr.op
        if op == "&&":
            return int(bool(self.expr(expr.lhs))
                       and bool(self.expr(expr.rhs)))
        if op == "||":
            return int(bool(self.expr(expr.lhs))
                       or bool(self.expr(expr.rhs)))
        lhs = self.expr(expr.lhs)
        rhs = self.expr(expr.rhs)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0.0:
                raise WorkloadError("division by zero", code="RPR511")
            return lhs / rhs
        if op == "==":
            return int(lhs == rhs)
        if op == "!=":
            return int(lhs != rhs)
        if op == "<":
            return int(lhs < rhs)
        if op == "<=":
            return int(lhs <= rhs)
        if op == ">":
            return int(lhs > rhs)
        return int(lhs >= rhs)
