"""Command-line interface.

Subcommands::

    python -m repro list                     # the workload suite
    python -m repro run mriq --mode dyser    # run one workload
    python -m repro profile mm --scale tiny --export trace.json
    python -m repro compile mriq --dump-ir   # show compiler output
    python -m repro lint mm fir --json       # static analysis verdicts
    python -m repro suite --scale tiny --jobs 4   # scalar-vs-DySER sweep
    python -m repro sweep saxpy mm --geometry 4x4 8x8 --jobs 4
    python -m repro cache --clear            # artifact-cache maintenance
    python -m repro cache prune --max-age-days 7 --max-bytes 500M
    python -m repro serve --port 8787        # simulation-as-a-service
    python -m repro serve --workers 4        # sharded gateway + workers
    python -m repro gateway --worker-addr 127.0.0.1:9001
    python -m repro submit mm --scale tiny   # client for a running serve
    python -m repro submit mm --no-wait      # durable async /v2 job
    python -m repro jobs watch j-...         # poll a durable job
    python -m repro fpga --width 8 --height 8
    python -m repro fuzz --seed 0 --cases 200 --oracle all
    python -m repro fuzz --replay tests/corpus/

``suite`` and ``sweep`` run through :mod:`repro.engine`: jobs are
deduplicated, served from the persistent artifact cache when warm, and
fanned out over ``--jobs`` worker processes.  Tables on stdout are
byte-identical between ``--jobs 1`` and ``--jobs N``; engine accounting
goes to stderr.  ``profile`` runs one workload with the structured
event stream on and renders/exports the timeline (:mod:`repro.obs`).

The CLI imports exclusively through the :mod:`repro` facade — it is a
consumer of the public API, never of submodule internals.
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    DEFAULT_BACKEND,
    RunConfig,
    SUITE,
    TraceOptions,
    WorkloadError,
    backend_names,
    format_table,
    geomean,
    get_workload,
    run_workload,
)


def _cmd_list(_args) -> int:
    rows = [
        [w.name, w.category, w.flops_per_item, w.description]
        for w in (SUITE[n] for n in sorted(SUITE))
    ]
    print(format_table(
        ["name", "category", "flops/item", "description"], rows,
        title="workload suite"))
    return 0


def _cmd_run(args) -> int:
    result = run_workload(RunConfig(
        workload=args.name, mode=args.mode, scale=args.scale,
        seed=args.seed, backend=args.backend))
    print(f"{args.name} [{args.mode}, {args.scale}]: "
          f"{'OK' if result.correct else 'WRONG RESULT'}")
    print(result.stats.summary())
    print(result.energy.summary())
    if args.mode == "dyser":
        for region in result.compile_result.regions:
            print(f"region {region.loop_header}: {region.reason} "
                  f"(shape={region.shape}, unroll={region.unrolled})")
    return 0 if result.correct else 1


def _cmd_profile(args) -> int:
    from repro import profile_workload

    # ``--backend fast`` is accepted here too: tracing resolves it to
    # the reference core (same cycles, by the parity contract).
    report = profile_workload(RunConfig(
        workload=args.name, mode=args.mode, scale=args.scale,
        seed=args.seed, backend=args.backend,
        trace=TraceOptions(enabled=True, capacity=args.capacity,
                           instructions=args.instructions)))
    print(report.summary(limit=args.limit))
    if args.export:
        path = report.export(args.export)
        print(f"\ntrace written to {path} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0 if report.result.correct else 1


def _cmd_compile(args) -> int:
    from repro import compile_dyser, compile_scalar

    if args.file:
        with open(args.file) as handle:
            source = handle.read()
    else:
        source = get_workload(args.name).source
    result = (compile_scalar(source) if args.scalar
              else compile_dyser(source))
    if args.dump_ir:
        print(result.ir_dump)
        print()
    for region in result.regions:
        print(f"; region {region.loop_header}: {region.reason}")
    print(result.program.listing())
    for config_id, config in result.program.dyser_configs.items():
        print(f"\n; configuration #{config_id}")
        print(config.dfg.describe())
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro import (
        CompilerOptions,
        Fabric,
        FabricGeometry,
        Severity,
        lint_workload,
        perf_report,
    )

    options = None
    if args.geometry is not None:
        options = CompilerOptions(
            fabric=Fabric(FabricGeometry(*args.geometry)))
    names = args.workloads or sorted(SUITE)
    reports = [lint_workload(name, mode=args.mode, options=options)
               for name in names]
    perf_reports = []
    if args.perf:
        perf_reports = [perf_report(name, mode=args.mode,
                                    options=options)
                        for name in names]
    ok = all(report.ok for report in reports + perf_reports)
    if args.json:
        print(json.dumps({
            "ok": ok,
            "reports": [report.to_dict()
                        for report in reports + perf_reports],
        }, indent=2, sort_keys=True))
        return 0 if ok else 1
    min_severity = (Severity.WARNING if not args.notes
                    else Severity.NOTE)
    for report in reports:
        print(report.render(min_severity=min_severity))
    for report in perf_reports:
        # Perf attributions are notes; hiding them would make --perf
        # a no-op, so they render unconditionally.
        print(report.render(min_severity=Severity.NOTE))
    total_errors = sum(len(r.errors) for r in reports + perf_reports)
    total_warnings = sum(len(r.warnings) for r in reports + perf_reports)
    print(f"\nlint: {len(reports)} workload"
          f"{'s' if len(reports) != 1 else ''}, "
          f"{total_errors} error{'s' if total_errors != 1 else ''}, "
          f"{total_warnings} warning"
          f"{'s' if total_warnings != 1 else ''}")
    return 0 if ok else 1


def _engine_cache(args):
    from repro import ArtifactCache

    if getattr(args, "no_cache", False):
        return None
    return ArtifactCache(getattr(args, "cache_dir", None))


def _cmd_suite(args) -> int:
    from repro import EngineFailure, run_comparisons

    try:
        comps, report = run_comparisons(
            sorted(SUITE), scale=args.scale, seed=args.seed,
            jobs=args.jobs, cache=_engine_cache(args),
            timeout=args.timeout, retries=args.retries,
            backend=args.backend)
    except EngineFailure as exc:
        print(exc, file=sys.stderr)
        return 1
    rows = []
    speedups = []
    for name in sorted(SUITE):
        c = comps[name]
        ok = c.scalar.correct and c.dyser.correct
        rows.append([
            name, c.scalar.cycles, c.dyser.cycles,
            f"{c.speedup:.2f}x", f"{c.energy_ratio:.2f}x",
            "ok" if ok else "WRONG",
        ])
        speedups.append(c.speedup)
    print(format_table(
        ["benchmark", "scalar cycles", "dyser cycles", "speedup",
         "energy gain", "check"],
        rows, title=f"suite @ {args.scale}"))
    print(f"\ngeomean speedup: {geomean(speedups):.2f}x")
    print(report.summary(), file=sys.stderr)
    return 0 if all(r[-1] == "ok" for r in rows) else 1


def _parse_geometry(text: str) -> tuple[int, int]:
    try:
        width, height = text.lower().split("x")
        return (int(width), int(height))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"geometry must look like 8x8, got {text!r}") from None


#: sweep axis flags -> JobSpec field names.
_SWEEP_AXES = (
    ("geometry", "geometry"),
    ("unroll", "unroll"),
    ("vectorize", "vectorize"),
    ("fifo_depth", "input_fifo_depth"),
    ("port_width", "vector_port_words_per_cycle"),
    ("config_cache", "config_cache_capacity"),
)


def _cmd_sweep(args) -> int:
    import itertools

    from repro import SweepSpec, run_jobs

    workloads = args.workloads or sorted(SUITE)
    try:
        for name in workloads:
            get_workload(name)  # validate early, with the library's message
    except WorkloadError as exc:
        print(exc, file=sys.stderr)
        return 2
    axes = {}
    for flag, fieldname in _SWEEP_AXES:
        values = getattr(args, flag)
        if values:
            axes[fieldname] = values

    modes = ("scalar", "dyser") if args.mode == "both" else (args.mode,)
    sweep = SweepSpec(
        workloads=tuple(workloads), modes=modes,
        base={"scale": args.scale, "seed": args.seed,
              "backend": args.backend},
        axes=tuple((name, tuple(values))
                   for name, values in axes.items()))
    specs = sweep.jobs()

    # Rows stay (workload, grid point); map each cell back into the
    # SweepSpec expansion order (workload -> mode -> point).
    grid = list(itertools.product(*axes.values())) or [()]
    axis_names = list(axes)
    npoints = len(grid)
    row_plan = []  # (workload, overrides, spec indices by mode)
    for wi, name in enumerate(workloads):
        for pi, point in enumerate(grid):
            overrides = dict(zip(axis_names, point, strict=True))
            indices = {
                mode: (wi * len(modes) + mi) * npoints + pi
                for mi, mode in enumerate(modes)
            }
            row_plan.append((name, overrides, indices))

    report = run_jobs(specs, jobs=args.jobs, cache=_engine_cache(args),
                      timeout=args.timeout, retries=args.retries)

    axis_titles = [flag.replace("_", " ") for flag, f in _SWEEP_AXES
                   if f in axes]
    headers = ["benchmark", *axis_titles]
    if "scalar" in modes:
        headers.append("scalar cycles")
    if "dyser" in modes:
        headers.append("dyser cycles")
    if len(modes) == 2:
        headers.append("speedup")
    headers.append("check")

    rows = []
    ok = True
    for name, overrides, indices in row_plan:
        row = [name]
        for fieldname in axis_names:
            value = overrides[fieldname]
            row.append("x".join(map(str, value))
                       if isinstance(value, tuple) else value)
        results = {m: report.results[i] for m, i in indices.items()}
        if any(r is None for r in results.values()):
            row += ["-"] * (len(headers) - len(row) - 1) + ["FAILED"]
            ok = False
            rows.append(row)
            continue
        if "scalar" in results:
            row.append(results["scalar"].cycles)
        if "dyser" in results:
            row.append(results["dyser"].cycles)
        if len(modes) == 2:
            row.append(f"{results['scalar'].cycles / results['dyser'].cycles:.2f}x")
        correct = all(r.correct for r in results.values())
        ok = ok and correct
        row.append("ok" if correct else "WRONG")
        rows.append(row)

    print(format_table(headers, rows,
                       title=f"sweep @ {args.scale} ({len(specs)} jobs)"))
    print(f"sweep hash: {sweep.sweep_hash[:16]}", file=sys.stderr)
    print(report.summary(), file=sys.stderr)
    for record in report.failures:
        print(f"FAILED {record.spec.describe()}: {record.error}",
              file=sys.stderr)
    return 0 if ok and not report.failures else 1


def _cmd_cache(args) -> int:
    from repro import ArtifactCache

    cache = ArtifactCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}")
        return 0
    print(cache.describe())
    return 0


def _parse_bytes(text: str) -> int:
    """Accept plain bytes or K/M/G-suffixed sizes (e.g. ``500M``)."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    raw = text.strip().lower().removesuffix("b")
    scale = 1
    if raw and raw[-1] in units:
        scale = units[raw[-1]]
        raw = raw[:-1]
    try:
        return int(float(raw) * scale)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad size {text!r}; use bytes or e.g. 512K, 100M, 2G"
        ) from None


def _cmd_cache_prune(args) -> int:
    from repro import ArtifactCache

    if args.max_age_days is None and args.max_bytes is None:
        print("cache prune: give --max-age-days and/or --max-bytes",
              file=sys.stderr)
        return 2
    cache = ArtifactCache(args.cache_dir)
    report = cache.prune(max_age_days=args.max_age_days,
                         max_bytes=args.max_bytes)
    print(f"pruned {report['removed']} entries "
          f"({report['freed_bytes'] / 1024:.1f} KiB) from {cache.root}; "
          f"{report['kept']} entries "
          f"({report['kept_bytes'] / 1024:.1f} KiB) kept")
    return 0


def _load_tenancy(args):
    """Per-tenant quota controller from ``--tenancy-config`` (JSON)."""
    path = getattr(args, "tenancy_config", None)
    if not path:
        return None
    import json

    from repro import controller_from_config

    with open(path) as handle:
        return controller_from_config(json.load(handle))


def _free_port(host: str) -> int:
    import socket

    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _cmd_serve(args) -> int:
    if args.workers > 0:
        return _serve_multi(args)
    from repro import ArtifactCache, ReproService, TraceOptions

    cache = (None if args.no_cache
             else ArtifactCache(args.cache_dir))
    events = (TraceOptions(enabled=True).stream()
              if args.trace_export else None)
    service = ReproService(
        host=args.host, port=args.port,
        queue_limit=args.queue_limit, jobs=args.jobs,
        batch_window_s=args.batch_window_ms / 1000.0,
        batch_max=args.batch_max, cache=cache,
        timeout=args.timeout, retries=args.retries, events=events,
        journal=args.journal, tenancy=_load_tenancy(args))
    code = service.run()
    if args.trace_export and events is not None:
        from repro import write_chrome_trace

        path = write_chrome_trace(events, args.trace_export)
        print(f"service trace written to {path}")
    return code


def _serve_multi(args) -> int:
    """``repro serve --workers N``: spawn N shards + run the gateway."""
    import contextlib
    import signal as signal_mod
    import subprocess

    from repro import (
        ArtifactCache,
        Client,
        GatewayService,
        ServiceError,
    )

    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    procs: list[subprocess.Popen] = []
    addrs: list[str] = []
    for i in range(args.workers):
        port = _free_port(args.host)
        cmd = [sys.executable, "-m", "repro", "serve",
               "--host", args.host, "--port", str(port),
               "--queue-limit", str(args.queue_limit),
               "--jobs", str(args.jobs),
               "--batch-window-ms", str(args.batch_window_ms),
               "--batch-max", str(args.batch_max),
               "--retries", str(args.retries)]
        if args.timeout is not None:
            cmd += ["--timeout", str(args.timeout)]
        if cache is None:
            cmd += ["--no-cache"]
        else:
            # Shard-local caches stay hot for each worker's slice of
            # the hash space; the gateway keeps the shared fallback.
            cmd += ["--cache-dir", str(cache.root / f"shard-{i}")]
        proc = subprocess.Popen(cmd)
        procs.append(proc)
        addrs.append(f"{args.host}:{port}")
        print(f"repro worker {i} pid={proc.pid} "
              f"addr={args.host}:{port}", flush=True)
    try:
        for addr in addrs:
            host, _, port = addr.rpartition(":")
            probe = Client(host=host, port=int(port), timeout=5,
                           retries=40, backoff_s=0.25)
            try:
                probe.health()
            except ServiceError as exc:
                print(f"worker {addr} failed to come up: {exc}",
                      file=sys.stderr)
                return 1
            finally:
                probe.close()
        journal = args.journal
        if journal is None and cache is not None:
            journal = cache.root / "gateway-jobs.jsonl"
        gateway = GatewayService(
            host=args.host, port=args.port, workers=addrs,
            cache=cache, tenancy=_load_tenancy(args), journal=journal)
        return gateway.run()
    finally:
        for proc in procs:
            with contextlib.suppress(OSError):
                proc.send_signal(signal_mod.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()


def _cmd_gateway(args) -> int:
    from repro import ArtifactCache, GatewayService

    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    journal = args.journal
    if journal is None and cache is not None:
        journal = cache.root / "gateway-jobs.jsonl"
    gateway = GatewayService(
        host=args.host, port=args.port,
        workers=list(args.worker_addr), cache=cache,
        tenancy=_load_tenancy(args), journal=journal,
        health_interval_s=args.health_interval,
        forward_timeout_s=args.forward_timeout)
    return gateway.run()


def _job_row(status) -> list:
    progress = f"{status.done}/{status.total}"
    return [status.id, status.kind, status.state, progress,
            status.tenant, status.label or "-"]


def _cmd_jobs(args) -> int:
    import dataclasses
    import json
    import time as time_mod

    from repro import Client, ServiceError

    client = Client(host=args.host, port=args.port,
                    timeout=args.request_timeout,
                    tenant=getattr(args, "tenant", None))
    try:
        if args.jobs_cmd == "list":
            statuses = client.jobs(state=args.state)
            if args.json:
                print(json.dumps(
                    [dataclasses.asdict(s) for s in statuses],
                    indent=2, sort_keys=True))
                return 0
            if not statuses:
                print("no jobs")
                return 0
            print(format_table(
                ["id", "kind", "state", "progress", "tenant", "label"],
                [_job_row(s) for s in statuses], title="jobs"))
            return 0
        if args.jobs_cmd == "show":
            status = client.job(args.id, results=args.results)
            print(json.dumps(dataclasses.asdict(status), indent=2,
                             sort_keys=True))
            return 0 if status.state != "failed" else 1
        if args.jobs_cmd == "watch":
            last = None
            while True:
                status = client.job(args.id)
                line = (f"{status.id}: {status.state} "
                        f"{status.done}/{status.total}")
                if line != last:
                    print(line, flush=True)
                    last = line
                if status.terminal:
                    if status.error:
                        print(f"error: {status.error}",
                              file=sys.stderr)
                    return 0 if status.succeeded else 1
                time_mod.sleep(args.poll)
        if args.jobs_cmd == "cancel":
            status = client.cancel(args.id)
            print(f"{status.id}: {status.state}")
            return 0
        print("jobs: choose one of list/show/watch/cancel",
              file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"jobs {args.jobs_cmd} failed: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _submit_spec(args) -> dict:
    spec: dict = {"workload": args.workload, "mode": args.mode,
                  "scale": args.scale, "seed": args.seed,
                  "backend": args.backend}
    if args.geometry is not None:
        spec["geometry"] = list(args.geometry)
    if args.unroll is not None:
        spec["unroll"] = args.unroll
    return spec


def _cmd_submit(args) -> int:
    import json

    from repro import Client, ServiceError

    client = Client(host=args.host, port=args.port,
                    timeout=args.request_timeout,
                    retries=args.retries, tenant=args.tenant)
    try:
        if args.health:
            payload = client.health()
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0 if payload.get("ready") else 1
        if args.metrics:
            print(client.metrics_text(), end="")
            return 0
        if args.workload is None:
            print("submit: a workload is required "
                  "(or use --health/--metrics)", file=sys.stderr)
            return 2
        spec = _submit_spec(args)
        if args.lint:
            payload = client.lint(spec)
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0 if payload.get("ok") else 1
        if not args.wait:
            handle = client.submit(spec, priority=args.priority,
                                   timeout_s=args.timeout_s,
                                   label=args.label)
            snap = handle.submitted
            if args.json:
                import dataclasses

                print(json.dumps(dataclasses.asdict(snap), indent=2,
                                 sort_keys=True))
            else:
                print(f"job {snap.id} {snap.state} "
                      f"({snap.done}/{snap.total}) — "
                      f"poll with: repro jobs watch {snap.id}")
            return 0
        payload = client.execute(spec, priority=args.priority,
                                 timeout_s=args.timeout_s,
                                 raise_on_error=False)
    except ServiceError as exc:
        body = exc.payload or exc.to_dict()
        if args.json:
            print(json.dumps(body, indent=2, sort_keys=True))
        else:
            print(f"submit failed: {exc}", file=sys.stderr)
            for diag in body.get("diagnostics", []):
                print(f"  {diag.get('severity')} {diag.get('code')}: "
                      f"{diag.get('message')}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if payload.get("ok") else 1
    if not payload.get("ok"):
        print(f"{args.workload}: {payload.get('status')} — "
              f"{payload.get('error', 'no result')}", file=sys.stderr)
        for diag in payload.get("diagnostics", []):
            print(f"  {diag.get('severity')} {diag.get('code')}: "
                  f"{diag.get('message')}", file=sys.stderr)
        return 1
    result = payload.get("result", {})
    stats = result.get("stats", {})
    print(f"{args.workload}/{args.mode}@{args.scale}: "
          f"{payload['status']} in {payload['latency_ms']:.1f}ms — "
          f"{'OK' if result.get('correct') else 'WRONG RESULT'}, "
          f"{stats.get('cycles', '?')} cycles, "
          f"{stats.get('instructions', '?')} instructions")
    return 0 if result.get("correct") else 1


def _cmd_fpga(args) -> int:
    from repro import Fabric, FabricGeometry, utilization_table

    print(utilization_table(Fabric(FabricGeometry(args.width,
                                                  args.height))))
    return 0


def _cmd_fuzz(args) -> int:
    import json
    import pathlib

    from repro import FuzzOptions, iter_corpus, replay_entry, run_fuzz

    if args.replay:
        entries = iter_corpus(args.replay)
        if not entries:
            print(f"no corpus entries under {args.replay}",
                  file=sys.stderr)
            return 1
        failures = 0
        for path in entries:
            finding = replay_entry(path)
            if finding is None:
                print(f"ok   {path.name}")
            else:
                failures += 1
                print(f"FAIL {path.name}  {finding.describe()}")
        print(f"replayed {len(entries)} entries, "
              f"{failures} still failing", file=sys.stderr)
        return 1 if failures else 0

    oracles = tuple(args.oracle) if args.oracle else ("all",)
    if "all" in oracles:
        oracles = ("parity", "batched", "lint", "ir", "perfbound",
                   "chaos", "dsl")
    try:
        options = FuzzOptions(
            seed=args.seed,
            cases=args.cases,
            time_budget_s=args.time_budget,
            oracles=oracles,
            irregularity=args.irregularity,
            shrink=not args.no_shrink,
            corpus_dir=args.corpus_dir,
        )
    except ValueError as exc:
        print(f"repro fuzz: error: {exc}", file=sys.stderr)
        return 2
    report = run_fuzz(options)
    payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    if args.report:
        pathlib.Path(args.report).write_text(payload + "\n")
    print(payload)
    print(report.summary(), file=sys.stderr)
    return 0 if report.ok else 1


def _read_kernel_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _print_dsl_report(report, *, as_json: bool) -> None:
    import json

    if as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return
    for diag in report.to_dict()["diagnostics"]:
        where = diag.get("location") or "-"
        print(f"  {diag['severity']} {diag['code']} @ {where}: "
              f"{diag['message']}", file=sys.stderr)


def _cmd_kernel_check(args) -> int:
    from repro import check_source

    spec, report = check_source(_read_kernel_source(args.file))
    _print_dsl_report(report, as_json=args.json)
    if spec is None:
        if not args.json:
            print(f"{args.file}: rejected "
                  f"({len(report.errors)} error(s))", file=sys.stderr)
        return 1
    if not args.json:
        print(f"{spec.name}: ok — kernel_hash {spec.kernel_hash} "
              f"(workload {spec.workload_name})")
    return 0


def _cmd_kernel_run(args) -> int:
    from repro import check_source, lower_spec, register_workload

    spec, report = check_source(_read_kernel_source(args.file))
    if spec is None:
        _print_dsl_report(report, as_json=args.json)
        print(f"{args.file}: rejected by DSL validation",
              file=sys.stderr)
        return 1
    workload = lower_spec(spec)
    register_workload(workload, replace=True)
    result = run_workload(RunConfig(
        workload=workload.name, mode=args.mode, scale=args.scale,
        seed=args.seed, backend=args.backend))
    print(f"{spec.name} ({workload.name}) [{args.mode}, {args.scale}]: "
          f"{'OK' if result.correct else 'WRONG RESULT'}")
    print(result.stats.summary())
    if args.mode == "dyser":
        for region in result.compile_result.regions:
            print(f"region {region.loop_header}: {region.reason} "
                  f"(shape={region.shape}, unroll={region.unrolled})")
    return 0 if result.correct else 1


def _cmd_kernel_submit(args) -> int:
    import json

    from repro import Client, ServiceError

    source = _read_kernel_source(args.file)
    client = Client(host=args.host, port=args.port,
                    timeout=args.request_timeout,
                    retries=args.retries, tenant=args.tenant)
    try:
        payload = client.submit_kernel(source)
    except ServiceError as exc:
        body = exc.payload or exc.to_dict()
        if args.json:
            print(json.dumps(body, indent=2, sort_keys=True))
        else:
            print(f"kernel submit failed: {exc}", file=sys.stderr)
            error = body.get("error") or {}
            for diag in error.get("diagnostics", []):
                print(f"  {diag.get('severity')} {diag.get('code')}: "
                      f"{diag.get('message')}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    kernel = payload.get("kernel", {})
    verb = "registered" if kernel.get("created") else "already registered"
    print(f"{kernel.get('name')}: {verb} as {kernel.get('workload')} "
          f"(kernel_hash {kernel.get('kernel_hash')})")
    for diag in kernel.get("warnings", []):
        print(f"  {diag.get('severity')} {diag.get('code')}: "
              f"{diag.get('message')}", file=sys.stderr)
    print(f"run it with: repro submit {kernel.get('workload')} "
          f"--host {args.host} --port {args.port}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPARC-DySER prototype reproduction (ISPASS 2015)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite") \
        .set_defaults(func=_cmd_list)

    def add_backend_flag(p) -> None:
        p.add_argument("--backend", choices=backend_names(),
                       default=DEFAULT_BACKEND,
                       help="simulation backend (cycle-exact-equal; "
                            f"default: {DEFAULT_BACKEND})")

    run_p = sub.add_parser("run", help="run one workload")
    run_p.add_argument("name", choices=sorted(SUITE))
    run_p.add_argument("--mode", choices=("scalar", "dyser"),
                       default="dyser")
    run_p.add_argument("--scale", default="small",
                       choices=("tiny", "small", "medium"))
    run_p.add_argument("--seed", type=int, default=7)
    add_backend_flag(run_p)
    run_p.set_defaults(func=_cmd_run)

    profile_p = sub.add_parser(
        "profile",
        help="run one workload with tracing on and render the timeline",
        description="Trace one workload through the structured event "
                    "stream, print the cycle-attribution tables, and "
                    "optionally export a Chrome/Perfetto trace, e.g.: "
                    "repro profile mm --scale tiny --export trace.json")
    profile_p.add_argument("name", choices=sorted(SUITE))
    profile_p.add_argument("--mode", choices=("scalar", "dyser"),
                           default="dyser")
    profile_p.add_argument("--scale", default="tiny",
                           choices=("tiny", "small", "medium"))
    profile_p.add_argument("--seed", type=int, default=7)
    profile_p.add_argument("--export", default=None, metavar="PATH",
                           help="write Chrome trace_event JSON here "
                                "(open in chrome://tracing or "
                                "ui.perfetto.dev)")
    profile_p.add_argument("--capacity", type=int, default=1_000_000,
                           help="event ring-buffer capacity")
    profile_p.add_argument("--instructions", action="store_true",
                           help="also record one event per retired "
                                "instruction (large traces)")
    profile_p.add_argument("--limit", type=int, default=40,
                           help="max rows in the per-invocation table")
    add_backend_flag(profile_p)
    profile_p.set_defaults(func=_cmd_profile)

    compile_p = sub.add_parser("compile", help="compile and disassemble")
    group = compile_p.add_mutually_exclusive_group(required=True)
    group.add_argument("--name", dest="name", choices=sorted(SUITE))
    group.add_argument("--file", dest="file")
    compile_p.add_argument("--scalar", action="store_true",
                           help="baseline build instead of DySER")
    compile_p.add_argument("--dump-ir", action="store_true")
    compile_p.set_defaults(func=_cmd_compile)

    lint_p = sub.add_parser(
        "lint",
        help="static analysis: IR verifier + configuration linter",
        description="Compile the named workloads and report every "
                    "static finding (stable RPRnnn codes): IR "
                    "verification, DFG/configuration lint, and the "
                    "control-flow shape advisories behind the paper's "
                    "E7 result, e.g.: repro lint mm fir --json")
    lint_p.add_argument("workloads", nargs="*", metavar="workload",
                        help="workloads to lint (default: whole suite)")
    lint_p.add_argument("--mode", choices=("dyser", "scalar"),
                        default="dyser")
    lint_p.add_argument("--geometry", type=_parse_geometry, default=None,
                        metavar="WxH", help="fabric geometry, e.g. 4x4")
    lint_p.add_argument("--json", action="store_true",
                        help="machine-readable diagnostics on stdout")
    lint_p.add_argument("--notes", action="store_true",
                        help="also show note-severity advisories "
                             "(offload decisions)")
    lint_p.add_argument("--perf", action="store_true",
                        help="also run the static performance-bound "
                             "analyzer (RPR4xx): predicted cycles, "
                             "sound lower bound, and per-region "
                             "bottleneck attribution, no simulation")
    lint_p.set_defaults(func=_cmd_lint)

    def add_engine_flags(p) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial, in-process)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent artifact cache")
        p.add_argument("--cache-dir", default=None,
                       help="artifact cache root (default: "
                            "$REPRO_CACHE_DIR or .repro-cache/)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in seconds (pooled runs)")
        p.add_argument("--retries", type=int, default=1,
                       help="retries per failed/crashed job")
        add_backend_flag(p)

    suite_p = sub.add_parser(
        "suite", help="scalar-vs-DySER sweep (engine-backed)")
    suite_p.add_argument("--scale", default="tiny",
                         choices=("tiny", "small", "medium"))
    suite_p.add_argument("--seed", type=int, default=7)
    add_engine_flags(suite_p)
    suite_p.set_defaults(func=_cmd_suite)

    sweep_p = sub.add_parser(
        "sweep", help="design-space sweep over compiler/fabric knobs",
        description="Cartesian sweep through the parallel engine, e.g.: "
                    "repro sweep saxpy mm --geometry 4x4 8x8 "
                    "--unroll 1 8 --jobs 4 --scale tiny")
    sweep_p.add_argument("workloads", nargs="*", metavar="workload",
                         help="workloads to sweep (default: whole suite)")
    sweep_p.add_argument("--mode", choices=("both", "dyser", "scalar"),
                         default="both")
    sweep_p.add_argument("--scale", default="tiny",
                         choices=("tiny", "small", "medium"))
    sweep_p.add_argument("--seed", type=int, default=7)
    sweep_p.add_argument("--geometry", nargs="+", type=_parse_geometry,
                         metavar="WxH", help="fabric geometries, e.g. 4x4")
    sweep_p.add_argument("--unroll", nargs="+", type=int)
    sweep_p.add_argument("--vectorize", nargs="+", type=int,
                         choices=(0, 1), help="wide port transfers on/off")
    sweep_p.add_argument("--fifo-depth", nargs="+", type=int,
                         help="input port FIFO depth")
    sweep_p.add_argument("--port-width", nargs="+", type=int,
                         help="vector port words per cycle")
    sweep_p.add_argument("--config-cache", nargs="+", type=int,
                         help="configuration cache capacity")
    add_engine_flags(sweep_p)
    sweep_p.set_defaults(func=_cmd_sweep)

    cache_p = sub.add_parser(
        "cache", help="inspect/clear/prune the artifact cache",
        description="Without a subcommand, print byte-accounted cache "
                    "stats.  'repro cache prune --max-age-days 7 "
                    "--max-bytes 500M' evicts LRU entries so a "
                    "long-running service node stays bounded.")
    cache_p.add_argument("--cache-dir", default=None)
    cache_p.add_argument("--clear", action="store_true")
    cache_p.set_defaults(func=_cmd_cache)
    cache_sub = cache_p.add_subparsers(dest="cache_cmd")
    prune_p = cache_sub.add_parser(
        "prune", help="evict cache entries (LRU by mtime)")
    prune_p.add_argument("--cache-dir", default=None)
    prune_p.add_argument("--max-age-days", type=float, default=None,
                         help="evict entries older than this many days")
    prune_p.add_argument("--max-bytes", type=_parse_bytes, default=None,
                         metavar="SIZE",
                         help="evict oldest entries until the cache "
                              "fits (accepts 512K/100M/2G suffixes)")
    prune_p.set_defaults(func=_cmd_cache_prune)

    serve_p = sub.add_parser(
        "serve", help="run the simulation service daemon",
        description="Long-lived JSON-over-HTTP daemon over the engine: "
                    "admission control (pre-flight lint, cache dedup, "
                    "request coalescing), a bounded priority queue with "
                    "backpressure, micro-batched execution, /healthz "
                    "and Prometheus /metrics.  SIGTERM drains in-flight "
                    "work before exiting.")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8787,
                         help="TCP port (0 = ephemeral; default 8787)")
    serve_p.add_argument("--queue-limit", type=int, default=64,
                         help="max admitted-but-unanswered jobs before "
                              "backpressure (429) kicks in")
    serve_p.add_argument("--jobs", type=int, default=1,
                         help="engine worker processes per batch")
    serve_p.add_argument("--batch-window-ms", type=float, default=5.0,
                         help="micro-batching window in milliseconds")
    serve_p.add_argument("--batch-max", type=int, default=16,
                         help="max specs per engine submission")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent artifact cache")
    serve_p.add_argument("--cache-dir", default=None)
    serve_p.add_argument("--timeout", type=float, default=None,
                         help="per-job engine timeout (pooled runs)")
    serve_p.add_argument("--retries", type=int, default=1)
    serve_p.add_argument("--trace-export", default=None, metavar="PATH",
                         help="write a Chrome trace of request/job "
                              "lifecycle events here on shutdown")
    serve_p.add_argument("--workers", type=int, default=0,
                         help="spawn N worker shards and serve as a "
                              "sharding gateway in front of them "
                              "(0 = single-node daemon; default)")
    serve_p.add_argument("--journal", default=None, metavar="PATH",
                         help="durable job journal (default: "
                              "<cache>/jobs.jsonl)")
    serve_p.add_argument("--tenancy-config", default=None,
                         metavar="PATH",
                         help="JSON per-tenant quota config "
                              "({'default': {...}, 'tenants': {...}})")
    serve_p.set_defaults(func=_cmd_serve)

    gateway_p = sub.add_parser(
        "gateway", help="shard requests across running workers",
        description="Sharding front end over already-running 'repro "
                    "serve' workers: consistent-hash routing on "
                    "job/sweep hashes, /healthz-driven ring eviction "
                    "and failover, shared artifact-cache fallback, "
                    "per-tenant quotas, and the durable /v2/jobs API.")
    gateway_p.add_argument("--host", default="127.0.0.1")
    gateway_p.add_argument("--port", type=int, default=8787,
                           help="TCP port (0 = ephemeral; default 8787)")
    gateway_p.add_argument("--worker-addr", action="append",
                           required=True, metavar="HOST:PORT",
                           help="worker daemon address; repeatable")
    gateway_p.add_argument("--no-cache", action="store_true",
                           help="no shared artifact-cache fallback")
    gateway_p.add_argument("--cache-dir", default=None)
    gateway_p.add_argument("--journal", default=None, metavar="PATH",
                           help="durable job journal (default: "
                                "<cache>/gateway-jobs.jsonl)")
    gateway_p.add_argument("--tenancy-config", default=None,
                           metavar="PATH",
                           help="JSON per-tenant quota config")
    gateway_p.add_argument("--health-interval", type=float,
                           default=0.5, metavar="S",
                           help="worker health-probe period (seconds)")
    gateway_p.add_argument("--forward-timeout", type=float,
                           default=120.0, metavar="S",
                           help="per-request forward timeout (seconds)")
    gateway_p.set_defaults(func=_cmd_gateway)

    jobs_p = sub.add_parser(
        "jobs", help="inspect durable jobs on a running service",
        description="Client for the /v2/jobs API: repro jobs list; "
                    "repro jobs show <id>; repro jobs watch <id>; "
                    "repro jobs cancel <id>.")
    jobs_sub = jobs_p.add_subparsers(dest="jobs_cmd", required=True)

    def _jobs_common(p) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8787)
        p.add_argument("--request-timeout", type=float, default=60.0,
                       help="client-side HTTP timeout in seconds")
        p.add_argument("--tenant", default=None,
                       help="tenant name (X-Repro-Tenant header)")

    jobs_list_p = jobs_sub.add_parser("list", help="list known jobs")
    jobs_list_p.add_argument("--state", default=None,
                             choices=("queued", "running", "succeeded",
                                      "failed", "cancelled"),
                             help="only jobs in this state")
    jobs_list_p.add_argument("--json", action="store_true",
                             help="print raw job status JSON")
    _jobs_common(jobs_list_p)

    jobs_show_p = jobs_sub.add_parser("show", help="show one job")
    jobs_show_p.add_argument("id", help="job id (j-...)")
    jobs_show_p.add_argument("--results", action="store_true",
                             help="include per-spec result payloads")
    _jobs_common(jobs_show_p)

    jobs_watch_p = jobs_sub.add_parser(
        "watch", help="poll a job until it finishes")
    jobs_watch_p.add_argument("id", help="job id (j-...)")
    jobs_watch_p.add_argument("--poll", type=float, default=0.5,
                              metavar="S",
                              help="poll period (default: 0.5s)")
    _jobs_common(jobs_watch_p)

    jobs_cancel_p = jobs_sub.add_parser(
        "cancel", help="cancel a queued or running job")
    jobs_cancel_p.add_argument("id", help="job id (j-...)")
    _jobs_common(jobs_cancel_p)
    jobs_p.set_defaults(func=_cmd_jobs)

    submit_p = sub.add_parser(
        "submit", help="submit one request to a running service",
        description="Client for 'repro serve', e.g.: repro submit mm "
                    "--scale tiny --json; repro submit --health; "
                    "repro submit --metrics.  Retries with backoff "
                    "while the server is starting or sheds load (429).")
    submit_p.add_argument("workload", nargs="?", default=None,
                          help="workload to run (see 'repro list')")
    submit_p.add_argument("--mode", choices=("scalar", "dyser"),
                          default="dyser")
    submit_p.add_argument("--scale", default="small",
                          choices=("tiny", "small", "medium"))
    submit_p.add_argument("--seed", type=int, default=7)
    submit_p.add_argument("--geometry", type=_parse_geometry,
                          default=None, metavar="WxH")
    submit_p.add_argument("--unroll", type=int, default=None)
    add_backend_flag(submit_p)
    submit_p.add_argument("--priority", type=int, default=0,
                          help="queue priority (lower runs first)")
    submit_p.add_argument("--timeout-s", dest="timeout_s", type=float,
                          default=None,
                          help="server-side queue-wait deadline")
    submit_p.add_argument("--host", default="127.0.0.1")
    submit_p.add_argument("--port", type=int, default=8787)
    submit_p.add_argument("--request-timeout", type=float, default=300.0,
                          help="client-side HTTP timeout in seconds")
    submit_p.add_argument("--retries", type=int, default=5,
                          help="client retry budget (connection "
                               "failures, 429, 503)")
    submit_p.add_argument("--lint", action="store_true",
                          help="pre-flight lint only, don't execute")
    submit_p.add_argument("--health", action="store_true",
                          help="print /healthz and exit")
    submit_p.add_argument("--metrics", action="store_true",
                          help="print the Prometheus /metrics dump")
    submit_p.add_argument("--json", action="store_true",
                          help="print the raw response envelope")
    submit_p.add_argument("--wait", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="--wait (default) runs synchronously; "
                               "--no-wait submits a durable /v2 job "
                               "and prints its id")
    submit_p.add_argument("--label", default=None,
                          help="label for --no-wait job submissions")
    submit_p.add_argument("--tenant", default=None,
                          help="tenant name (X-Repro-Tenant header)")
    submit_p.set_defaults(func=_cmd_submit)

    fpga_p = sub.add_parser("fpga", help="FPGA utilization table")
    fpga_p.add_argument("--width", type=int, default=8)
    fpga_p.add_argument("--height", type=int, default=8)
    fpga_p.set_defaults(func=_cmd_fpga)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="differential fuzzing + chaos (JSON findings report)",
        description="Generate seeded random programs against the "
                    "DySER interface contract and cross-examine the "
                    "simulator with differential oracles; findings "
                    "are shrunk and saved as a replayable corpus. "
                    "Exit status 1 when anything was found.")
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="campaign seed; any finding reproduces "
                             "from (seed, index) alone (default: 0)")
    fuzz_p.add_argument("--cases", type=int, default=200,
                        help="generated cases (default: 200)")
    fuzz_p.add_argument("--time-budget", type=float, default=None,
                        metavar="S",
                        help="stop generating after S seconds "
                             "(report marked truncated)")
    fuzz_p.add_argument("--oracle", action="append",
                        choices=("parity", "batched", "lint", "ir",
                                 "perfbound", "chaos", "dsl", "all"),
                        help="oracle(s) to run; repeatable "
                             "(default: all)")
    fuzz_p.add_argument("--irregularity", type=float, default=0.35,
                        help="bias toward adversarial shapes, 0..1 "
                             "(default: 0.35)")
    fuzz_p.add_argument("--no-shrink", action="store_true",
                        help="skip greedy minimization of findings")
    fuzz_p.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="persist shrunk findings as corpus "
                             "entries under DIR")
    fuzz_p.add_argument("--replay", default=None, metavar="DIR",
                        help="replay corpus entries under DIR instead "
                             "of generating (e.g. tests/corpus/)")
    fuzz_p.add_argument("--report", default=None, metavar="PATH",
                        help="also write the JSON report to PATH")
    fuzz_p.set_defaults(func=_cmd_fuzz)

    kernel_p = sub.add_parser(
        "kernel",
        help="validate, run, or submit a DSL kernel (repro.lang)",
        description="Work with kernels written in the repro.lang DSL: "
                    "'check' validates a source file and prints the "
                    "RPR5xx diagnostics, 'run' registers it locally "
                    "and simulates it, 'submit' registers it with a "
                    "running service (POST /v2/kernels).")
    kernel_sub = kernel_p.add_subparsers(dest="kernel_command",
                                         required=True)

    kcheck_p = kernel_sub.add_parser(
        "check", help="validate a kernel source file")
    kcheck_p.add_argument("file", help="DSL source path ('-' for stdin)")
    kcheck_p.add_argument("--json", action="store_true",
                          help="print the full diagnostic report")
    kcheck_p.set_defaults(func=_cmd_kernel_check)

    krun_p = kernel_sub.add_parser(
        "run", help="validate, register, and simulate a kernel locally")
    krun_p.add_argument("file", help="DSL source path ('-' for stdin)")
    krun_p.add_argument("--mode", choices=("scalar", "dyser"),
                        default="dyser")
    krun_p.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"))
    krun_p.add_argument("--seed", type=int, default=7)
    krun_p.add_argument("--json", action="store_true",
                        help="print rejection diagnostics as JSON")
    add_backend_flag(krun_p)
    krun_p.set_defaults(func=_cmd_kernel_run)

    ksubmit_p = kernel_sub.add_parser(
        "submit", help="register a kernel with a running service")
    ksubmit_p.add_argument("file", help="DSL source path ('-' for stdin)")
    ksubmit_p.add_argument("--host", default="127.0.0.1")
    ksubmit_p.add_argument("--port", type=int, default=8787)
    ksubmit_p.add_argument("--request-timeout", type=float,
                           default=300.0,
                           help="client-side HTTP timeout in seconds")
    ksubmit_p.add_argument("--retries", type=int, default=5,
                           help="client retry budget (connection "
                                "failures, 429, 503)")
    ksubmit_p.add_argument("--tenant", default=None,
                           help="tenant name (X-Repro-Tenant header)")
    ksubmit_p.add_argument("--json", action="store_true",
                           help="print the raw response envelope")
    ksubmit_p.set_defaults(func=_cmd_kernel_submit)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
