"""Command-line interface.

Subcommands::

    python -m repro list                     # the workload suite
    python -m repro run mriq --mode dyser    # run one workload
    python -m repro compile mriq --dump-ir   # show compiler output
    python -m repro suite --scale tiny       # scalar-vs-DySER sweep
    python -m repro fpga --width 8 --height 8
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import compare, format_table, geomean, run_workload
from repro.workloads import SUITE, get


def _cmd_list(_args) -> int:
    rows = [
        [w.name, w.category, w.flops_per_item, w.description]
        for w in (SUITE[n] for n in sorted(SUITE))
    ]
    print(format_table(
        ["name", "category", "flops/item", "description"], rows,
        title="workload suite"))
    return 0


def _cmd_run(args) -> int:
    result = run_workload(args.name, mode=args.mode, scale=args.scale,
                          seed=args.seed)
    print(f"{args.name} [{args.mode}, {args.scale}]: "
          f"{'OK' if result.correct else 'WRONG RESULT'}")
    print(result.stats.summary())
    print(result.energy.summary())
    if args.mode == "dyser":
        for region in result.compile_result.regions:
            print(f"region {region.loop_header}: {region.reason} "
                  f"(shape={region.shape}, unroll={region.unrolled})")
    return 0 if result.correct else 1


def _cmd_compile(args) -> int:
    from repro.compiler import compile_dyser, compile_scalar

    if args.file:
        with open(args.file) as handle:
            source = handle.read()
    else:
        source = get(args.name).source
    result = (compile_scalar(source) if args.scalar
              else compile_dyser(source))
    if args.dump_ir:
        print(result.ir_dump)
        print()
    for region in result.regions:
        print(f"; region {region.loop_header}: {region.reason}")
    print(result.program.listing())
    for config_id, config in result.program.dyser_configs.items():
        print(f"\n; configuration #{config_id}")
        print(config.dfg.describe())
    return 0


def _cmd_suite(args) -> int:
    rows = []
    speedups = []
    for name in sorted(SUITE):
        c = compare(name, scale=args.scale, seed=args.seed)
        ok = c.scalar.correct and c.dyser.correct
        rows.append([
            name, c.scalar.cycles, c.dyser.cycles,
            f"{c.speedup:.2f}x", f"{c.energy_ratio:.2f}x",
            "ok" if ok else "WRONG",
        ])
        speedups.append(c.speedup)
    print(format_table(
        ["benchmark", "scalar cycles", "dyser cycles", "speedup",
         "energy gain", "check"],
        rows, title=f"suite @ {args.scale}"))
    print(f"\ngeomean speedup: {geomean(speedups):.2f}x")
    return 0 if all(r[-1] == "ok" for r in rows) else 1


def _cmd_fpga(args) -> int:
    from repro.dyser import Fabric, FabricGeometry
    from repro.fpga import utilization_table

    print(utilization_table(Fabric(FabricGeometry(args.width,
                                                  args.height))))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPARC-DySER prototype reproduction (ISPASS 2015)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite") \
        .set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run one workload")
    run_p.add_argument("name", choices=sorted(SUITE))
    run_p.add_argument("--mode", choices=("scalar", "dyser"),
                       default="dyser")
    run_p.add_argument("--scale", default="small",
                       choices=("tiny", "small", "medium"))
    run_p.add_argument("--seed", type=int, default=7)
    run_p.set_defaults(func=_cmd_run)

    compile_p = sub.add_parser("compile", help="compile and disassemble")
    group = compile_p.add_mutually_exclusive_group(required=True)
    group.add_argument("--name", dest="name", choices=sorted(SUITE))
    group.add_argument("--file", dest="file")
    compile_p.add_argument("--scalar", action="store_true",
                           help="baseline build instead of DySER")
    compile_p.add_argument("--dump-ir", action="store_true")
    compile_p.set_defaults(func=_cmd_compile)

    suite_p = sub.add_parser("suite", help="scalar-vs-DySER sweep")
    suite_p.add_argument("--scale", default="tiny",
                         choices=("tiny", "small", "medium"))
    suite_p.add_argument("--seed", type=int, default=7)
    suite_p.set_defaults(func=_cmd_suite)

    fpga_p = sub.add_parser("fpga", help="FPGA utilization table")
    fpga_p.add_argument("--width", type=int, default=8)
    fpga_p.add_argument("--height", type=int, default=8)
    fpga_p.set_defaults(func=_cmd_fpga)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
