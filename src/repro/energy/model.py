"""Activity-based energy and power model of the SPARC-DySER prototype.

The FPGA prototype reports power by block; the abstract's headline anchor
is "DySER ... consuming only 200 mW".  We reproduce that with an event
energy model: every counter the simulator collects is multiplied by a
per-event energy, plus per-block static power integrated over runtime.

All constants are **calibrated**, not measured: they are chosen so that

- the DySER block sits near 200 mW on compute-bound kernels at the 50 MHz
  prototype clock (E5 checks the 150-250 mW band);
- the OpenSPARC core lands in the watts-class range typical of a T1 core
  on a Virtex-5 class FPGA;
- relative magnitudes follow architecture folklore (FPU op >> ALU op,
  DRAM access >> cache hit, switch hop << FU op).

Constants live here, in one place, so sensitivity studies can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.statistics import ExecStats
from repro.isa.opcodes import InsnClass


@dataclass
class EnergyParams:
    """Per-event energies in nanojoules, static power in milliwatts."""

    frequency_hz: float = 50e6          # prototype clock

    # Host core events (nJ).
    fetch_decode_nj: float = 0.30       # per issued instruction
    alu_nj: float = 0.12
    mul_div_nj: float = 0.45
    fpu_nj: float = 1.30                # shared FPU op (microcoded, hot)
    load_store_nj: float = 0.35         # D$ access + LSU
    dram_nj: float = 6.0                # per L1 miss
    branch_nj: float = 0.10

    # DySER events (nJ).
    dyser_fu_op_nj: float = 0.075
    dyser_switch_hop_nj: float = 0.015
    dyser_port_nj: float = 0.080        # per value crossing the interface
    dyser_config_word_nj: float = 0.80  # per configuration word streamed

    # Static power (mW).
    core_static_mw: float = 1450.0
    dyser_static_mw: float = 172.0

    #: When False (core without DySER), the fabric burns nothing.
    dyser_present: bool = True


@dataclass
class EnergyReport:
    """Energy accounting for one run."""

    cycles: int
    runtime_s: float
    breakdown_nj: dict[str, float] = field(default_factory=dict)

    @property
    def total_nj(self) -> float:
        return sum(self.breakdown_nj.values())

    @property
    def total_j(self) -> float:
        return self.total_nj * 1e-9

    @property
    def avg_power_mw(self) -> float:
        if self.runtime_s == 0:
            return 0.0
        return self.total_j / self.runtime_s * 1e3

    def block_power_mw(self, prefix: str) -> float:
        """Average power of every breakdown entry starting with prefix."""
        if self.runtime_s == 0:
            return 0.0
        nj = sum(v for k, v in self.breakdown_nj.items()
                 if k.startswith(prefix))
        return nj * 1e-9 / self.runtime_s * 1e3

    @property
    def core_power_mw(self) -> float:
        return self.block_power_mw("core")

    @property
    def dyser_power_mw(self) -> float:
        return self.block_power_mw("dyser")

    def energy_delay_product(self) -> float:
        """EDP in joule-seconds — the paper's efficiency metric."""
        return self.total_j * self.runtime_s

    def to_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "runtime_s": self.runtime_s,
            "breakdown_nj": dict(self.breakdown_nj),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyReport":
        return cls(
            cycles=data["cycles"],
            runtime_s=data["runtime_s"],
            breakdown_nj=dict(data["breakdown_nj"]),
        )

    def summary(self) -> str:
        lines = [
            f"runtime {self.runtime_s * 1e3:.3f} ms, "
            f"energy {self.total_j * 1e3:.3f} mJ, "
            f"avg power {self.avg_power_mw:.0f} mW "
            f"(core {self.core_power_mw:.0f} mW, "
            f"dyser {self.dyser_power_mw:.0f} mW)"
        ]
        for key, nj in sorted(self.breakdown_nj.items(),
                              key=lambda kv: -kv[1]):
            lines.append(f"  {key:<22} {nj * 1e-6:10.4f} mJ")
        return "\n".join(lines)


class EnergyModel:
    """Turns :class:`ExecStats` into an :class:`EnergyReport`."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def account(self, stats: ExecStats) -> EnergyReport:
        p = self.params
        runtime_s = stats.cycles / p.frequency_hz
        bd: dict[str, float] = {}

        mix = stats.insn_mix
        issued = stats.instructions
        bd["core.fetch_decode"] = issued * p.fetch_decode_nj
        alu_ops = (mix.get(InsnClass.ALU, 0) + mix.get(InsnClass.MOVE, 0)
                   + mix.get(InsnClass.SYSTEM, 0))
        bd["core.alu"] = alu_ops * p.alu_nj
        bd["core.mul_div"] = (
            mix.get(InsnClass.MUL, 0) + mix.get(InsnClass.DIV, 0)
        ) * p.mul_div_nj
        bd["core.fpu"] = (
            mix.get(InsnClass.FPU, 0) + mix.get(InsnClass.FDIV, 0)
        ) * p.fpu_nj
        mem_ops = (mix.get(InsnClass.LOAD, 0) + mix.get(InsnClass.STORE, 0)
                   + mix.get(InsnClass.DYSER_LOAD, 0)
                   + mix.get(InsnClass.DYSER_STORE, 0))
        bd["core.cache"] = mem_ops * p.load_store_nj
        bd["core.dram"] = (
            stats.dcache_misses + stats.icache_misses) * p.dram_nj
        bd["core.branch"] = mix.get(InsnClass.BRANCH, 0) * p.branch_nj
        bd["core.static"] = (
            p.core_static_mw * 1e-3 * runtime_s * 1e9)  # mW*s -> nJ

        if p.dyser_present:
            bd["dyser.fu"] = stats.dyser_fu_ops * p.dyser_fu_op_nj
            bd["dyser.network"] = (
                stats.dyser_switch_hops * p.dyser_switch_hop_nj)
            bd["dyser.ports"] = (
                stats.dyser_values_sent + stats.dyser_values_received
            ) * p.dyser_port_nj
            bd["dyser.config"] = (
                stats.dyser_config_words * p.dyser_config_word_nj)
            bd["dyser.static"] = (
                p.dyser_static_mw * 1e-3 * runtime_s * 1e9)
        return EnergyReport(cycles=stats.cycles, runtime_s=runtime_s,
                            breakdown_nj=bd)
