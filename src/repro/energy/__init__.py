"""Activity-based power/energy model of the prototype."""

from repro.energy.model import EnergyModel, EnergyParams, EnergyReport

__all__ = ["EnergyModel", "EnergyParams", "EnergyReport"]
