"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IsaError(ReproError):
    """Malformed instruction, unknown opcode, or bad operand."""


class AssemblerError(IsaError):
    """Raised when assembly text cannot be parsed or linked."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """Runtime fault during simulation (bad address, div by zero, ...)."""


class MemoryFault(SimulationError):
    """Out-of-range or misaligned memory access."""

    def __init__(self, address: int, reason: str = "out of range") -> None:
        self.address = address
        super().__init__(f"memory fault at {address:#x}: {reason}")


class DyserError(ReproError):
    """Errors in the DySER fabric model (bad config, port misuse, ...)."""


class ConfigurationError(DyserError):
    """A datapath configuration is inconsistent or unroutable."""


class CompilerError(ReproError):
    """Base class for compiler failures."""


class LexerError(CompilerError):
    def __init__(self, message: str, line: int, column: int) -> None:
        self.line = line
        self.column = column
        super().__init__(f"{line}:{column}: {message}")


class ParseError(CompilerError):
    def __init__(self, message: str, line: int, column: int) -> None:
        self.line = line
        self.column = column
        super().__init__(f"{line}:{column}: {message}")


class TypeCheckError(CompilerError):
    """Semantic analysis failure (undefined name, type mismatch, ...)."""


class RegionRejected(CompilerError):
    """A candidate DySER region was rejected; carries the reason code."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(f"region rejected: {reason}")


class SchedulingError(CompilerError):
    """The spatial scheduler could not map a DFG onto the fabric."""


class WorkloadError(ReproError):
    """Unknown workload or bad workload parameters."""
