"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.

Errors carry *structured diagnostics*: an optional stable diagnostic
``code`` (``RPR1xx`` IR, ``RPR2xx`` configuration, ``RPR3xx`` shape
advisory — see :mod:`repro.analysis.diagnostics` for the registry) and a
free-form ``context`` payload (node id, coordinate, pass name, ...) so
tooling can render machine-readable reports instead of parsing message
strings.  Both are optional: ``ConfigurationError("bad")`` still works.
"""

from __future__ import annotations

import re
from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by this library.

    Attributes:
        code: stable diagnostic code (``RPRnnn``) or None.  Subclasses
            may set a class-level default; the keyword argument wins.
        context: structured payload identifying *what* failed (node id,
            fabric coordinate, pass name, port number, ...).
    """

    #: Class-level default diagnostic code (subclasses may override).
    default_code: str | None = None

    def __init__(self, message: str = "", *, code: str | None = None,
                 **context: Any) -> None:
        super().__init__(message)
        self.code: str | None = code or self.default_code
        self.context: dict[str, Any] = context

    @property
    def message(self) -> str:
        return str(self)

    def to_dict(self) -> dict:
        """JSON-safe view (feeds :mod:`repro.analysis.diagnostics`)."""
        return {
            "error": type(self).__name__,
            "code": self.code,
            "message": str(self),
            "context": {k: _json_safe(v) for k, v in self.context.items()},
        }


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of context values to JSON-safe forms."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


#: Default reprs of objects without a __repr__ embed the id():
#: ``<repro.cpu.memory.Memory object at 0x7f3a...>``.  Those addresses
#: vary run to run, so any error string built from one is useless for
#: differential comparison.  The lookahead for the closing ``>`` keeps
#: *semantic* addresses — ``memory fault at 0x40`` — intact: those
#: identify the fault and must keep distinguishing different faults.
_OBJECT_ADDR = re.compile(r" at 0x[0-9a-fA-F]+(?=>)")


def stable_error_string(exc: BaseException) -> str:
    """A deterministic, comparable rendering of any exception.

    The differential oracles (:mod:`repro.harness.fuzz`, the parity
    harness) compare error outcomes across backends and across runs, so
    the rendering must be identical for the *same* failure and differ
    for different ones:

    - ``TypeName[CODE]: message`` — the diagnostic code rides along when
      the error carries one;
    - memory addresses (``at 0x7f...``) are stripped from the message;
    - :class:`ReproError` context is appended in sorted-key order, so
      dict insertion order can never leak into the comparison.
    """
    name = type(exc).__name__
    code = getattr(exc, "code", None)
    head = f"{name}[{code}]" if code else name
    message = _OBJECT_ADDR.sub(" at 0x…", str(exc))
    context = getattr(exc, "context", None)
    if context:
        items = ", ".join(
            f"{k}={_json_safe(context[k])!r}" for k in sorted(context))
        return f"{head}: {message} {{{items}}}"
    return f"{head}: {message}"


class IsaError(ReproError):
    """Malformed instruction, unknown opcode, or bad operand."""


class AssemblerError(IsaError):
    """Raised when assembly text cannot be parsed or linked."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message, line=line)


class SimulationError(ReproError):
    """Runtime fault during simulation (bad address, div by zero, ...)."""


class MemoryFault(SimulationError):
    """Out-of-range or misaligned memory access."""

    def __init__(self, address: int, reason: str = "out of range") -> None:
        self.address = address
        super().__init__(f"memory fault at {address:#x}: {reason}",
                         address=address, reason=reason)


class DyserError(ReproError):
    """Errors in the DySER fabric model (bad config, port misuse, ...)."""


class ConfigurationError(DyserError):
    """A datapath configuration is inconsistent or unroutable."""


class CompilerError(ReproError):
    """Base class for compiler failures."""


class LexerError(CompilerError):
    def __init__(self, message: str, line: int, column: int) -> None:
        self.line = line
        self.column = column
        super().__init__(f"{line}:{column}: {message}",
                         line=line, column=column)


class ParseError(CompilerError):
    def __init__(self, message: str, line: int, column: int) -> None:
        self.line = line
        self.column = column
        super().__init__(f"{line}:{column}: {message}",
                         line=line, column=column)


class TypeCheckError(CompilerError):
    """Semantic analysis failure (undefined name, type mismatch, ...)."""


class RegionRejected(CompilerError):
    """A candidate DySER region was rejected; carries the reason code."""

    default_code = "RPR304"

    def __init__(self, reason: str, *, code: str | None = None,
                 **context: Any) -> None:
        self.reason = reason
        super().__init__(f"region rejected: {reason}", code=code,
                         reason=reason, **context)


class SchedulingError(CompilerError):
    """The spatial scheduler could not map a DFG onto the fabric."""


class PassVerificationError(CompilerError):
    """An IR invariant broke after a named compiler pass.

    Raised by the :mod:`repro.analysis` verifier when
    ``CompilerOptions.verify_passes`` is on; names the pass so the
    offender is identified without bisecting the pipeline.  Carries the
    structured diagnostics that fired.
    """

    def __init__(self, pass_name: str, function: str,
                 diagnostics: list | None = None) -> None:
        self.pass_name = pass_name
        self.function = function
        self.diagnostics = list(diagnostics or [])
        detail = "; ".join(
            f"{d.code}: {d.message}" for d in self.diagnostics[:5])
        more = (f" (+{len(self.diagnostics) - 5} more)"
                if len(self.diagnostics) > 5 else "")
        super().__init__(
            f"IR verification failed after pass '{pass_name}' in "
            f"{function}: {detail}{more}",
            pass_name=pass_name, function=function)


class WorkloadError(ReproError):
    """Unknown workload or bad workload parameters."""
