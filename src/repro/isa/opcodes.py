"""Opcode definitions for the SPARC-flavoured host ISA plus DySER extension.

The prototype paper integrates DySER into the OpenSPARC T1 pipeline.  We do
not model SPARC encodings (register windows, condition codes); instead we
define a load/store RISC ISA with the same performance-relevant structure:
single-issue integer pipeline, separate FP register file, explicit
load/store, compare-and-branch, plus the DySER extension instructions the
paper's ISA interface defines (``dyser_init``, ``dyser_send``,
``dyser_recv``, ``dyser_load``, ``dyser_store`` and vector variants).

Each opcode carries static metadata used by the assembler, the functional
executor and the timing model: its operand signature, instruction class,
and whether it touches the FP register file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InsnClass(enum.Enum):
    """Coarse instruction class used for timing and statistics."""

    ALU = "alu"              # integer arithmetic/logic
    MUL = "mul"              # integer multiply
    DIV = "div"              # integer divide/remainder
    FPU = "fpu"              # FP add/sub/mul/compare/convert/select
    FDIV = "fdiv"            # FP divide and sqrt
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    MOVE = "move"            # register moves / immediates
    DYSER_INIT = "dyser_init"
    DYSER_SEND = "dyser_send"
    DYSER_RECV = "dyser_recv"
    DYSER_LOAD = "dyser_load"
    DYSER_STORE = "dyser_store"
    SYSTEM = "system"        # halt, nop


class Opcode(enum.Enum):
    """Every instruction the host core understands."""

    # Integer ALU, register-register.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"              # rd = (rs1 < rs2) ? 1 : 0, signed
    SEQ = "seq"              # rd = (rs1 == rs2) ? 1 : 0
    MIN = "min"
    MAX = "max"
    SEL = "sel"              # rd = rs1 ? rs2 : rs3 (if-conversion support)

    # Integer ALU, register-immediate.
    ADDI = "addi"
    MULI = "muli"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    SLTI = "slti"

    # Moves and constants.
    LI = "li"                # rd = imm (64-bit)
    MOV = "mov"              # rd = rs1
    FLI = "fli"              # fd = float imm
    FMOV = "fmov"            # fd = fs1
    I2F = "i2f"              # fd = float(rs1)
    F2I = "f2i"              # rd = int(fs1), truncating

    # Floating point (double precision).
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FNEG = "fneg"
    FABS = "fabs"
    FMIN = "fmin"
    FMAX = "fmax"
    FLT = "flt"              # rd(int) = (fs1 < fs2)
    FLE = "fle"              # rd(int) = (fs1 <= fs2)
    FEQ = "feq"              # rd(int) = (fs1 == fs2)
    FSEL = "fsel"            # fd = rs1 ? fs2 : fs3

    # Memory: 8-byte words, base register + immediate byte offset.
    LD = "ld"                # rd = mem[rs1 + imm] as int
    ST = "st"                # mem[rs1 + imm] = rs2
    FLD = "fld"              # fd = mem[rs1 + imm] as float
    FST = "fst"              # mem[rs1 + imm] = fs2

    # Control flow: compare-and-branch to a label.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    J = "j"                  # unconditional jump to label

    # DySER extension (the paper's accelerator interface).
    DINIT = "dinit"          # load configuration `imm` into the fabric
    DSEND = "dsend"          # send int rs1 to input port `port`
    DFSEND = "dfsend"        # send float fs1 to input port `port`
    DRECV = "drecv"          # rd = receive from output port `port`
    DFRECV = "dfrecv"        # fd = receive from output port `port`
    DLD = "dld"              # mem[rs1 + imm] -> input port (int path)
    DFLD = "dfld"            # mem[rs1 + imm] -> input port (float path)
    DST = "dst"              # output port -> mem[rs1 + imm] (int path)
    DFST = "dfst"            # output port -> mem[rs1 + imm] (float path)
    # Vector (temporal): imm consecutive words stream into ONE port's FIFO,
    # feeding imm successive invocations.
    DLDV = "dldv"            # mem[rs1..rs1+8*imm) -> port (int path)
    DFLDV = "dfldv"
    DSTV = "dstv"            # port -> mem[rs1..], imm values (int path)
    DFSTV = "dfstv"
    # Wide (spatial): imm consecutive words spread across ports
    # port..port+imm-1, all feeding the SAME invocation — DySER's wide
    # vector port interface, which enables in-fabric reduction trees.
    DLDW = "dldw"            # mem[rs1..] -> ports port.. (int path)
    DFLDW = "dfldw"
    DSTW = "dstw"            # ports port.. -> mem[rs1..] (int path)
    DFSTW = "dfstw"

    # System.
    NOP = "nop"
    HALT = "halt"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode.

    ``signature`` is a tuple of operand kinds, in assembly order, drawn
    from: ``rd``, ``rs1``, ``rs2``, ``rs3``, ``fd``, ``fs1``, ``fs2``,
    ``fs3``, ``imm``, ``port``, ``label``.
    """

    opcode: Opcode
    iclass: InsnClass
    signature: tuple[str, ...]
    commutative: bool = False

    @property
    def writes_int(self) -> bool:
        return "rd" in self.signature

    @property
    def writes_fp(self) -> bool:
        return "fd" in self.signature

    @property
    def is_branch(self) -> bool:
        return self.iclass in (InsnClass.BRANCH, InsnClass.JUMP)

    @property
    def is_dyser(self) -> bool:
        return self.iclass in (
            InsnClass.DYSER_INIT,
            InsnClass.DYSER_SEND,
            InsnClass.DYSER_RECV,
            InsnClass.DYSER_LOAD,
            InsnClass.DYSER_STORE,
        )

    @property
    def is_memory(self) -> bool:
        return self.iclass in (
            InsnClass.LOAD,
            InsnClass.STORE,
            InsnClass.DYSER_LOAD,
            InsnClass.DYSER_STORE,
        )


def _build_table() -> dict[Opcode, OpInfo]:
    O, C = Opcode, InsnClass
    rrr = ("rd", "rs1", "rs2")
    fff = ("fd", "fs1", "fs2")
    rri = ("rd", "rs1", "imm")
    entries: list[OpInfo] = [
        OpInfo(O.ADD, C.ALU, rrr, commutative=True),
        OpInfo(O.SUB, C.ALU, rrr),
        OpInfo(O.MUL, C.MUL, rrr, commutative=True),
        OpInfo(O.DIV, C.DIV, rrr),
        OpInfo(O.REM, C.DIV, rrr),
        OpInfo(O.AND, C.ALU, rrr, commutative=True),
        OpInfo(O.OR, C.ALU, rrr, commutative=True),
        OpInfo(O.XOR, C.ALU, rrr, commutative=True),
        OpInfo(O.SLL, C.ALU, rrr),
        OpInfo(O.SRL, C.ALU, rrr),
        OpInfo(O.SRA, C.ALU, rrr),
        OpInfo(O.SLT, C.ALU, rrr),
        OpInfo(O.SEQ, C.ALU, rrr, commutative=True),
        OpInfo(O.MIN, C.ALU, rrr, commutative=True),
        OpInfo(O.MAX, C.ALU, rrr, commutative=True),
        OpInfo(O.SEL, C.ALU, ("rd", "rs1", "rs2", "rs3")),
        OpInfo(O.ADDI, C.ALU, rri),
        OpInfo(O.MULI, C.MUL, rri),
        OpInfo(O.ANDI, C.ALU, rri),
        OpInfo(O.ORI, C.ALU, rri),
        OpInfo(O.XORI, C.ALU, rri),
        OpInfo(O.SLLI, C.ALU, rri),
        OpInfo(O.SRLI, C.ALU, rri),
        OpInfo(O.SRAI, C.ALU, rri),
        OpInfo(O.SLTI, C.ALU, rri),
        OpInfo(O.LI, C.MOVE, ("rd", "imm")),
        OpInfo(O.MOV, C.MOVE, ("rd", "rs1")),
        OpInfo(O.FLI, C.MOVE, ("fd", "imm")),
        OpInfo(O.FMOV, C.MOVE, ("fd", "fs1")),
        OpInfo(O.I2F, C.FPU, ("fd", "rs1")),
        OpInfo(O.F2I, C.FPU, ("rd", "fs1")),
        OpInfo(O.FADD, C.FPU, fff, commutative=True),
        OpInfo(O.FSUB, C.FPU, fff),
        OpInfo(O.FMUL, C.FPU, fff, commutative=True),
        OpInfo(O.FDIV, C.FDIV, fff),
        OpInfo(O.FSQRT, C.FDIV, ("fd", "fs1")),
        OpInfo(O.FNEG, C.FPU, ("fd", "fs1")),
        OpInfo(O.FABS, C.FPU, ("fd", "fs1")),
        OpInfo(O.FMIN, C.FPU, fff, commutative=True),
        OpInfo(O.FMAX, C.FPU, fff, commutative=True),
        OpInfo(O.FLT, C.FPU, ("rd", "fs1", "fs2")),
        OpInfo(O.FLE, C.FPU, ("rd", "fs1", "fs2")),
        OpInfo(O.FEQ, C.FPU, ("rd", "fs1", "fs2"), commutative=True),
        OpInfo(O.FSEL, C.FPU, ("fd", "rs1", "fs2", "fs3")),
        OpInfo(O.LD, C.LOAD, ("rd", "rs1", "imm")),
        OpInfo(O.ST, C.STORE, ("rs2", "rs1", "imm")),
        OpInfo(O.FLD, C.LOAD, ("fd", "rs1", "imm")),
        OpInfo(O.FST, C.STORE, ("fs2", "rs1", "imm")),
        OpInfo(O.BEQ, C.BRANCH, ("rs1", "rs2", "label")),
        OpInfo(O.BNE, C.BRANCH, ("rs1", "rs2", "label")),
        OpInfo(O.BLT, C.BRANCH, ("rs1", "rs2", "label")),
        OpInfo(O.BGE, C.BRANCH, ("rs1", "rs2", "label")),
        OpInfo(O.BLE, C.BRANCH, ("rs1", "rs2", "label")),
        OpInfo(O.BGT, C.BRANCH, ("rs1", "rs2", "label")),
        OpInfo(O.J, C.JUMP, ("label",)),
        OpInfo(O.DINIT, C.DYSER_INIT, ("imm",)),
        OpInfo(O.DSEND, C.DYSER_SEND, ("port", "rs1")),
        OpInfo(O.DFSEND, C.DYSER_SEND, ("port", "fs1")),
        OpInfo(O.DRECV, C.DYSER_RECV, ("rd", "port")),
        OpInfo(O.DFRECV, C.DYSER_RECV, ("fd", "port")),
        OpInfo(O.DLD, C.DYSER_LOAD, ("port", "rs1", "imm")),
        OpInfo(O.DFLD, C.DYSER_LOAD, ("port", "rs1", "imm")),
        OpInfo(O.DST, C.DYSER_STORE, ("port", "rs1", "imm")),
        OpInfo(O.DFST, C.DYSER_STORE, ("port", "rs1", "imm")),
        OpInfo(O.DLDV, C.DYSER_LOAD, ("port", "rs1", "imm")),
        OpInfo(O.DFLDV, C.DYSER_LOAD, ("port", "rs1", "imm")),
        OpInfo(O.DSTV, C.DYSER_STORE, ("port", "rs1", "imm")),
        OpInfo(O.DFSTV, C.DYSER_STORE, ("port", "rs1", "imm")),
        OpInfo(O.DLDW, C.DYSER_LOAD, ("port", "rs1", "imm")),
        OpInfo(O.DFLDW, C.DYSER_LOAD, ("port", "rs1", "imm")),
        OpInfo(O.DSTW, C.DYSER_STORE, ("port", "rs1", "imm")),
        OpInfo(O.DFSTW, C.DYSER_STORE, ("port", "rs1", "imm")),
        OpInfo(O.NOP, C.SYSTEM, ()),
        OpInfo(O.HALT, C.SYSTEM, ()),
    ]
    table = {e.opcode: e for e in entries}
    missing = set(Opcode) - set(table)
    if missing:  # pragma: no cover - construction-time sanity check
        raise AssertionError(f"opcodes without OpInfo: {missing}")
    return table


#: Static metadata for every opcode.
OP_INFO: dict[Opcode, OpInfo] = _build_table()

#: Temporal vector transfers: ``imm`` elements stream into one port FIFO.
VECTOR_OPS = frozenset(
    {Opcode.DLDV, Opcode.DFLDV, Opcode.DSTV, Opcode.DFSTV}
)

#: Wide (spatial) transfers: ``imm`` elements spread across adjacent ports.
WIDE_OPS = frozenset(
    {Opcode.DLDW, Opcode.DFLDW, Opcode.DSTW, Opcode.DFSTW}
)

#: All multi-element DySER transfers.
MULTI_OPS = VECTOR_OPS | WIDE_OPS

#: DySER opcodes operating on the FP value path.
FP_PATH_DYSER_OPS = frozenset(
    {Opcode.DFSEND, Opcode.DFRECV, Opcode.DFLD, Opcode.DFST,
     Opcode.DFLDV, Opcode.DFSTV, Opcode.DFLDW, Opcode.DFSTW}
)


def info(op: Opcode) -> OpInfo:
    """Return the :class:`OpInfo` for ``op``."""
    return OP_INFO[op]
