"""Instruction and operand model.

Instructions are plain dataclasses rather than packed encodings: the
evaluation depends on dynamic instruction counts and operand dataflow, not
on bit-level formats.  Register operands are small integers; the opcode's
signature (see :mod:`repro.isa.opcodes`) says which fields are meaningful
and whether a register index names the integer or the FP file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsaError
from repro.isa.opcodes import OP_INFO, Opcode

#: Number of registers in each register file (SPARC-like: 32 int, 32 fp).
NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Integer register index hard-wired to zero (SPARC %g0).
ZERO_REG = 0

#: Calling convention: arguments arrive in r8..r15 / f8..f15 (SPARC %o0-%o7
#: flavoured), results return in r8 / f8.
ARG_INT_REGS = tuple(range(8, 16))
ARG_FP_REGS = tuple(range(8, 16))
RET_INT_REG = 8
RET_FP_REG = 8


@dataclass
class Instruction:
    """One host instruction.

    Fields not named by the opcode's signature are ignored and should be
    left at their defaults.  ``target`` holds a label name until the
    program is linked, after which ``target_index`` holds the resolved
    instruction index.
    """

    op: Opcode
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    rs3: int | None = None
    imm: int | float | None = None
    port: int | None = None
    target: str | None = None
    target_index: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check that the operands required by the signature are present."""
        try:
            sig = OP_INFO[self.op].signature
        except KeyError as exc:  # pragma: no cover - defensive
            raise IsaError(f"unknown opcode {self.op!r}") from exc
        for kind in sig:
            value = self._operand(kind)
            if value is None:
                raise IsaError(f"{self.op.value}: missing operand {kind!r}")
            if kind in ("rd", "rs1", "rs2", "rs3"):
                if not 0 <= value < NUM_INT_REGS:
                    raise IsaError(
                        f"{self.op.value}: int register r{value} out of range"
                    )
            elif kind in ("fd", "fs1", "fs2", "fs3"):
                if not 0 <= value < NUM_FP_REGS:
                    raise IsaError(
                        f"{self.op.value}: fp register f{value} out of range"
                    )
            elif kind == "port" and value < 0:
                raise IsaError(f"{self.op.value}: negative port {value}")

    def _operand(self, kind: str):
        """Fetch the raw operand backing a signature slot.

        FP register slots reuse the integer fields (``fd`` -> ``rd`` etc.);
        the opcode signature disambiguates which file is meant.
        """
        mapping = {
            "rd": self.rd, "fd": self.rd,
            "rs1": self.rs1, "fs1": self.rs1,
            "rs2": self.rs2, "fs2": self.rs2,
            "rs3": self.rs3, "fs3": self.rs3,
            "imm": self.imm, "port": self.port, "label": self.target,
        }
        return mapping[kind]

    @property
    def info(self):
        return OP_INFO[self.op]

    def text(self) -> str:
        """Render in the assembler's text syntax."""
        parts: list[str] = []
        for kind in self.info.signature:
            value = self._operand(kind)
            if kind in ("rd", "rs1", "rs2", "rs3"):
                parts.append(f"r{value}")
            elif kind in ("fd", "fs1", "fs2", "fs3"):
                parts.append(f"f{value}")
            elif kind == "port":
                parts.append(f"p{value}")
            elif kind == "label":
                parts.append(str(value))
            else:  # imm
                parts.append(repr(value) if isinstance(value, float) else str(value))
        if parts:
            return f"{self.op.value} {', '.join(parts)}"
        return self.op.value

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text()


def make(op: Opcode, **fields) -> Instruction:
    """Keyword-argument instruction factory (used by code generators)."""
    return Instruction(op, **fields)
