"""SPARC-flavoured host ISA with the DySER extension."""

from repro.isa.assembler import assemble, disassemble
from repro.isa.instruction import (
    ARG_FP_REGS,
    ARG_INT_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    RET_FP_REG,
    RET_INT_REG,
    ZERO_REG,
    Instruction,
    make,
)
from repro.isa.opcodes import (
    FP_PATH_DYSER_OPS,
    OP_INFO,
    VECTOR_OPS,
    InsnClass,
    Opcode,
    OpInfo,
    info,
)
from repro.isa.program import Program

__all__ = [
    "ARG_FP_REGS",
    "ARG_INT_REGS",
    "FP_PATH_DYSER_OPS",
    "InsnClass",
    "Instruction",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "OP_INFO",
    "Opcode",
    "OpInfo",
    "Program",
    "RET_FP_REG",
    "RET_INT_REG",
    "VECTOR_OPS",
    "ZERO_REG",
    "assemble",
    "disassemble",
    "info",
    "make",
]
