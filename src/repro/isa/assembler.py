"""Two-way text assembler for the host ISA.

Syntax, one instruction per line::

    ; comment
    label:
        add  r3, r1, r2
        fld  f1, r4, 8        ; f1 = mem[r4 + 8]
        blt  r1, r2, loop
        dsend p0, r5
        dldv  p1, r6, 4       ; 4 elements from mem[r6..] to port 1
        halt

Registers are ``rN``/``fN``, ports ``pN``, immediates are decimal, hex
(``0x..``) or float literals, branch targets are bare label names.  The
assembler is used by tests and by the hand-scheduled "manual" DySER kernels
in the E6 experiment; the disassembler is :meth:`Program.listing`.
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError, IsaError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_INFO, Opcode
from repro.isa.program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_NAME_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+[eE][+-]?\d+|\d+\.\d*[eE][+-]?\d+)$")

_MNEMONICS = {op.value: op for op in Opcode}


def _parse_operand(kind: str, token: str, line: int):
    token = token.strip()
    if kind in ("rd", "rs1", "rs2", "rs3"):
        if not token.startswith("r"):
            raise AssemblerError(f"expected int register, got {token!r}", line)
        return _parse_index(token[1:], token, line)
    if kind in ("fd", "fs1", "fs2", "fs3"):
        if not token.startswith("f"):
            raise AssemblerError(f"expected fp register, got {token!r}", line)
        return _parse_index(token[1:], token, line)
    if kind == "port":
        if not token.startswith("p"):
            raise AssemblerError(f"expected port, got {token!r}", line)
        return _parse_index(token[1:], token, line)
    if kind == "label":
        if not _NAME_RE.match(token):
            raise AssemblerError(f"bad label name {token!r}", line)
        return token
    # Immediate: float first (so "1.5" is not truncated), then int.
    if _FLOAT_RE.match(token):
        return float(token)
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad immediate {token!r}", line) from None


def _parse_index(digits: str, token: str, line: int) -> int:
    try:
        return int(digits)
    except ValueError:
        raise AssemblerError(f"bad register/port {token!r}", line) from None


def assemble(text: str, name: str = "program") -> Program:
    """Assemble ``text`` into a linked :class:`Program`."""
    program = Program(name=name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            try:
                program.add_label(label_match.group(1))
            except IsaError as exc:
                raise AssemblerError(str(exc), lineno) from None
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        op = _MNEMONICS.get(mnemonic)
        if op is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", lineno)
        signature = OP_INFO[op].signature
        operand_text = parts[1] if len(parts) > 1 else ""
        tokens = [t for t in (s.strip() for s in operand_text.split(",")) if t]
        if len(tokens) != len(signature):
            raise AssemblerError(
                f"{mnemonic}: expected {len(signature)} operands "
                f"{signature}, got {len(tokens)}", lineno,
            )
        fields: dict[str, object] = {}
        for kind, token in zip(signature, tokens, strict=True):
            value = _parse_operand(kind, token, lineno)
            slot = {
                "rd": "rd", "fd": "rd",
                "rs1": "rs1", "fs1": "rs1",
                "rs2": "rs2", "fs2": "rs2",
                "rs3": "rs3", "fs3": "rs3",
                "imm": "imm", "port": "port", "label": "target",
            }[kind]
            fields[slot] = value
        try:
            program.add(Instruction(op, **fields))
        except IsaError as exc:
            raise AssemblerError(str(exc), lineno) from None
    try:
        return program.link()
    except IsaError as exc:
        raise AssemblerError(str(exc)) from None


def disassemble(program: Program) -> str:
    """Inverse of :func:`assemble` (modulo whitespace)."""
    return program.listing()
