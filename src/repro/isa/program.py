"""Program container: a linked sequence of instructions with labels.

A :class:`Program` owns a flat instruction list plus a label table.  The
compiler and the assembler both produce programs; :meth:`Program.link`
resolves branch targets from label names to instruction indices so the
simulator never does string lookups on the hot path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import IsaError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InsnClass, Opcode


@dataclass
class Program:
    """An executable instruction sequence.

    Attributes:
        instructions: the flat instruction list; index 0 is the entry point.
        labels: label name -> instruction index.
        name: human-readable identity (kernel name), used in reports.
        dyser_configs: configuration id -> DySER config object (attached by
            the DySER code generator; plain ``object`` here to avoid a
            dependency cycle with :mod:`repro.dyser`).
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    name: str = "program"
    dyser_configs: dict[int, object] = field(default_factory=dict)
    #: Words of spill storage the core must provide (base address in r28).
    spill_words: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def add(self, insn: Instruction) -> int:
        """Append ``insn``; return its index."""
        self.instructions.append(insn)
        return len(self.instructions) - 1

    def add_label(self, name: str, index: int | None = None) -> None:
        """Define ``name`` at ``index`` (default: the next instruction)."""
        if name in self.labels:
            raise IsaError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions) if index is None else index

    def link(self) -> "Program":
        """Resolve every branch target label to an instruction index.

        Returns ``self`` for chaining.  Raises :class:`IsaError` on
        undefined labels or labels past the end of the program.
        """
        n = len(self.instructions)
        for label, index in self.labels.items():
            if not 0 <= index <= n:
                raise IsaError(f"label {label!r} out of range ({index})")
        for insn in self.instructions:
            if insn.target is None:
                continue
            try:
                insn.target_index = self.labels[insn.target]
            except KeyError:
                raise IsaError(f"undefined label {insn.target!r}") from None
        return self

    @property
    def is_linked(self) -> bool:
        return all(
            i.target is None or i.target_index is not None
            for i in self.instructions
        )

    def static_mix(self) -> Counter:
        """Static instruction counts by :class:`InsnClass`."""
        mix: Counter = Counter()
        for insn in self.instructions:
            mix[insn.info.iclass] += 1
        return mix

    def uses_dyser(self) -> bool:
        return any(i.info.is_dyser for i in self.instructions)

    def listing(self) -> str:
        """Disassembly with labels, suitable for golden-file tests."""
        by_index: dict[int, list[str]] = {}
        for label, index in sorted(self.labels.items(), key=lambda kv: kv[1]):
            by_index.setdefault(index, []).append(label)
        lines: list[str] = []
        for i, insn in enumerate(self.instructions):
            for label in by_index.get(i, ()):
                lines.append(f"{label}:")
            lines.append(f"    {insn.text()}")
        for label in by_index.get(len(self.instructions), ()):
            lines.append(f"{label}:")
        return "\n".join(lines)

    def validate(self) -> None:
        """Structural checks: linked targets in range, HALT reachable."""
        n = len(self.instructions)
        for i, insn in enumerate(self.instructions):
            if insn.target is not None and insn.target_index is None:
                raise IsaError(f"instruction {i} ({insn.text()}) not linked")
            if insn.target_index is not None and not 0 <= insn.target_index <= n:
                raise IsaError(
                    f"instruction {i}: target index {insn.target_index} "
                    f"out of range"
                )
        if not any(i.op is Opcode.HALT for i in self.instructions):
            raise IsaError("program has no HALT")

    def count_class(self, iclass: InsnClass) -> int:
        return sum(1 for i in self.instructions if i.info.iclass is iclass)
