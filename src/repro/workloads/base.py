"""Workload infrastructure.

A :class:`Workload` bundles a kernel-language source, input preparation,
and a numpy-reference correctness check.  The harness compiles the source
(scalar or DySER), builds the inputs in simulator memory, runs, and calls
``check`` to validate outputs — every benchmark number in the E-series
experiments comes from a run that also passed its check.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.cpu.memory import Memory
from repro.errors import WorkloadError

#: Workload categories, matching the paper's characterization axes,
#: plus the sparse/irregular DSL tier (kernels written in the
#: :mod:`repro.lang` DSL rather than shipped as Python modules).
REGULAR = "regular"
IRREGULAR_COMPUTE = "irregular-compute"
IRREGULAR_CONTROL = "irregular-control"
IRREGULAR_DSL = "irregular-dsl"

CATEGORIES = (REGULAR, IRREGULAR_COMPUTE, IRREGULAR_CONTROL,
              IRREGULAR_DSL)


@dataclass
class Instance:
    """One prepared run: arguments plus an output check."""

    int_args: tuple = ()
    fp_args: tuple = ()
    check: Callable[[Memory], bool] = lambda mem: True
    #: Elements of useful output (for throughput-style reporting).
    work_items: int = 0


@dataclass
class Workload:
    """A benchmark kernel."""

    name: str
    category: str
    description: str
    source: str
    prepare: Callable[[Memory, str, int], Instance] = None  # type: ignore
    #: Floating-point ops per work item (characterization only).
    flops_per_item: float = 0.0

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise WorkloadError(
                f"{self.name}: unknown category {self.category!r}")


def scaled(sizes: dict[str, int]):
    """Helper: resolve a scale name to a size with a clear error."""

    def resolve(scale: str) -> int:
        try:
            return sizes[scale]
        except KeyError:
            raise WorkloadError(
                f"unknown scale {scale!r}; have {sorted(sizes)}") from None

    return resolve


def allclose_check(memory: Memory, address: int, expected: np.ndarray,
                   rtol: float = 1e-9, atol: float = 1e-12) -> bool:
    got = memory.read_numpy(address, expected.size)
    return bool(np.allclose(got, expected.ravel(), rtol=rtol, atol=atol))


def exact_check(memory: Memory, address: int, expected: np.ndarray) -> bool:
    got = memory.read_numpy(address, expected.size, dtype=np.int64)
    return bool(np.array_equal(got, expected.ravel()))
