"""The sparse/irregular DSL tier — kernels written *in* the DSL.

Four kernels covering the SPARK00-style sparse/irregular corner the
paper's hardest results live in, authored in :mod:`repro.lang` rather
than as Python modules, and lowered through exactly the pipeline user
submissions take (parse → validate → lower).  They register into the
``irregular-dsl`` suite category at import time, so every harness that
iterates the suite (scalar/dyser correctness, backend parity, batched
lockstep, the perf analyzer) exercises the DSL path for free.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import Workload

#: CSR sparse matrix-vector product: the classic indirect-gather
#: pattern (``x[cols[idx]]``) with data-dependent inner trip counts.
SPMV_CSR = """
kernel spmv_csr {
    size n   = { tiny: 12, small: 40, medium: 128 };
    size nnz = 4 * n;
    work  = nnz;
    flops = 2;

    in  float vals[nnz]     = uniform(-1.0, 1.0);
    in  int   cols[nnz]     = randint(0, n);
    in  int   rowptr[n + 1] = monotone(nnz);
    in  float x[n]          = uniform(-1.0, 1.0);
    in  int   nrows         = n;
    out float y[n];

    for (int r = 0; r < nrows; r = r + 1) {
        float acc = 0.0;
        int end = rowptr[r + 1];
        for (int idx = rowptr[r]; idx < end; idx = idx + 1) {
            dyser {
                acc = acc + vals[idx] * x[cols[idx]];
            }
        }
        y[r] = acc;
    }
}
"""

#: Pointer-chase list traversal: a permutation cycle walked serially.
#: The ``node = next[node]`` recurrence is the curtailing loop-carried
#: shape of the paper's E7 discussion — the shape advisories flag it.
PTR_CHASE = """
kernel ptr_chase {
    size n = { tiny: 16, small: 48, medium: 160 };
    work  = n;
    flops = 1;

    in  int   next[n] = permutation();
    in  float val[n]  = uniform(0.0, 1.0);
    in  int   steps   = n;
    out float acc[1];

    float sum = 0.0;
    int node = 0;
    for (int i = 0; i < steps; i = i + 1) {
        sum = sum + val[node];
        node = next[node];
    }
    acc[0] = sum;
}
"""

#: Irregular-DAG reduction: every node scatter-adds its weight into a
#: parent with a smaller index (indirect read-modify-write).
DAG_REDUCE = """
kernel dag_reduce {
    size n = { tiny: 16, small: 48, medium: 160 };
    work  = n;
    flops = 1;

    in  int   parent[n] = randint(0, n);
    in  float w[n]      = uniform(0.0, 1.0);
    in  int   count     = n;
    out float acc[n];

    acc[0] = w[0];
    for (int i = 1; i < count; i = i + 1) {
        int p = min(parent[i], i - 1);
        dyser {
            acc[p] = acc[p] + w[i];
        }
        acc[i] = acc[i] + w[i];
    }
}
"""

#: Branchy histogram: range-classification diamonds feeding an
#: indirect increment — control-heavy, low useful-op density.
HIST_BRANCHY = """
kernel hist_branchy {
    size n    = { tiny: 32, small: 96, medium: 320 };
    size bins = { tiny: 8, small: 8, medium: 8 };
    work  = n;
    flops = 1;

    in  float x[n]  = uniform(0.0, 1.0);
    in  int   count = n;
    out int   h[bins];

    for (int i = 0; i < count; i = i + 1) {
        float v = x[i];
        int b = 0;
        if (v < 0.25) {
            b = 0;
        } else if (v < 0.5) {
            b = 1;
        } else if (v < 0.75) {
            b = 2;
        } else {
            b = 3;
        }
        if (v * v > 0.5) {
            b = b + 4;
        }
        h[b] = h[b] + 1;
    }
}
"""

#: name -> DSL source for the shipped tier.
DSL_SOURCES: dict[str, str] = {
    "spmv_csr_dsl": SPMV_CSR,
    "ptr_chase_dsl": PTR_CHASE,
    "dag_reduce_dsl": DAG_REDUCE,
    "hist_branchy_dsl": HIST_BRANCHY,
}


def build_workloads() -> dict[str, Workload]:
    """Validate + lower the shipped tier (raises if any fails — a
    shipped kernel that does not pass its own gate is a bug)."""
    from repro.lang import check_source, lower_spec

    workloads: dict[str, Workload] = {}
    for name, source in DSL_SOURCES.items():
        spec, report = check_source(source)
        if spec is None:
            raise WorkloadError(
                f"shipped DSL kernel {name!r} failed validation:\n"
                f"{report.render()}")
        workloads[name] = lower_spec(spec, name=name)
    return workloads
