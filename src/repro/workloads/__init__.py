"""The benchmark workload suite."""

from repro.workloads.base import (
    CATEGORIES,
    IRREGULAR_COMPUTE,
    IRREGULAR_CONTROL,
    REGULAR,
    Instance,
    Workload,
)
from repro.workloads.suite import SUITE, get, names

__all__ = [
    "CATEGORIES",
    "IRREGULAR_COMPUTE",
    "IRREGULAR_CONTROL",
    "Instance",
    "REGULAR",
    "SUITE",
    "Workload",
    "get",
    "names",
]
