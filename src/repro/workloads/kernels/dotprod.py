"""dotprod — dense reduction (regular, loop-carried accumulator)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, allclose_check, scaled

SOURCE = """
kernel dotprod(out float y[], float a[], float b[], int n) {
    float acc = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc + a[i] * b[i];
    }
    y[0] = acc;
}
"""

_SIZES = scaled({"tiny": 32, "small": 256, "medium": 2048})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    rng = np.random.default_rng(seed)
    a = rng.random(n)
    b = rng.random(n)
    py = memory.alloc(1)
    pa = memory.alloc_numpy(a)
    pb = memory.alloc_numpy(b)
    expected = np.array([np.dot(a, b)])
    return Instance(
        int_args=(py, pa, pb, n),
        check=lambda mem: allclose_check(mem, py, expected, rtol=1e-6),
        work_items=n,
    )


WORKLOAD = Workload(
    name="dotprod",
    category=REGULAR,
    description="dot product (reduction; in-fabric tree when unrolled)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=2,
)
