"""Benchmark kernel modules; each exports a ``WORKLOAD``."""
