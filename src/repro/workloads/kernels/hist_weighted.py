"""hist_weighted — weighted binning (irregular-compute: data-dependent
store address with a may-alias carried dependence, so the region cannot
be unrolled; offloads at 1x)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (
    IRREGULAR_COMPUTE,
    Instance,
    Workload,
    allclose_check,
    scaled,
)

SOURCE = """
kernel hist_weighted(out float h[], int x[], float w[], int n, int bins) {
    for (int i = 0; i < n; i = i + 1) {
        int b = x[i] % bins;
        h[b] = h[b] + w[i] * w[i];
    }
}
"""

_SIZES = scaled({"tiny": 32, "small": 128, "medium": 512})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    bins = 8
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 1000, n).astype(np.int64)
    w = rng.random(n)
    ph = memory.alloc(bins)
    px = memory.alloc_numpy(x)
    pw = memory.alloc_numpy(w)
    expected = np.zeros(bins)
    np.add.at(expected, x % bins, w * w)
    return Instance(
        int_args=(ph, px, pw, n, bins),
        check=lambda mem: allclose_check(mem, ph, expected, rtol=1e-9),
        work_items=n,
    )


WORKLOAD = Workload(
    name="hist_weighted",
    category=IRREGULAR_COMPUTE,
    description="weighted histogram (data-dependent read-modify-write)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=2,
)
