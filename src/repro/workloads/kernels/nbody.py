"""nbody — all-pairs gravity force accumulation (regular, FP-div/sqrt
heavy, the kind of compound region DySER was designed for)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, scaled

SOURCE = """
kernel nbody(out float fx[], out float fy[], float x[], float y[],
             float m[], int n, float eps) {
    for (int i = 0; i < n; i = i + 1) {
        float ax = 0.0;
        float ay = 0.0;
        float xi = x[i];
        float yi = y[i];
        for (int j = 0; j < n; j = j + 1) {
            float dx = x[j] - xi;
            float dy = y[j] - yi;
            float r2 = dx * dx + dy * dy + eps;
            float inv = 1.0 / (r2 * sqrt(r2));
            float s = m[j] * inv;
            ax = ax + dx * s;
            ay = ay + dy * s;
        }
        fx[i] = ax;
        fy[i] = ay;
    }
}
"""

_SIZES = scaled({"tiny": 12, "small": 32, "medium": 96})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    eps = 1e-3
    rng = np.random.default_rng(seed)
    x = rng.random(n)
    y = rng.random(n)
    m = rng.random(n) + 0.5
    pfx = memory.alloc(n)
    pfy = memory.alloc(n)
    px = memory.alloc_numpy(x)
    py = memory.alloc_numpy(y)
    pm = memory.alloc_numpy(m)
    dx = x[None, :] - x[:, None]
    dy = y[None, :] - y[:, None]
    r2 = dx * dx + dy * dy + eps
    s = m[None, :] / (r2 * np.sqrt(r2))
    exp_fx = (dx * s).sum(axis=1)
    exp_fy = (dy * s).sum(axis=1)

    def check(mem):
        return bool(
            np.allclose(mem.read_numpy(pfx, n), exp_fx, rtol=1e-6)
            and np.allclose(mem.read_numpy(pfy, n), exp_fy, rtol=1e-6))

    return Instance(
        int_args=(pfx, pfy, px, py, pm, n),
        fp_args=(eps,),
        check=check,
        work_items=n * n,
    )


WORKLOAD = Workload(
    name="nbody",
    category=REGULAR,
    description="all-pairs 2D gravity step (div+sqrt compound region)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=12,
)
