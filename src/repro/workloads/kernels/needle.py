"""needle — Needleman-Wunsch dynamic programming row sweep
(irregular-compute: the recurrence carries through memory, so the region
runs un-unrolled with a serial invocation chain — the Rodinia kernel the
paper's compiler study leans on)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (
    IRREGULAR_COMPUTE,
    Instance,
    Workload,
    exact_check,
    scaled,
)

SOURCE = """
kernel needle(out int dp[], int score[], int n, int gap) {
    for (int i = 1; i < n; i = i + 1) {
        for (int j = 1; j < n; j = j + 1) {
            int diag = dp[(i - 1) * n + j - 1] + score[i * n + j];
            int up = dp[(i - 1) * n + j] - gap;
            int left = dp[i * n + j - 1] - gap;
            dp[i * n + j] = max(diag, max(up, left));
        }
    }
}
"""

_SIZES = scaled({"tiny": 8, "small": 20, "medium": 48})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    gap = 2
    rng = np.random.default_rng(seed)
    score = rng.integers(-3, 4, size=(n, n)).astype(np.int64)
    dp0 = np.zeros((n, n), dtype=np.int64)
    dp0[0, :] = -gap * np.arange(n)
    dp0[:, 0] = -gap * np.arange(n)
    pdp = memory.alloc_numpy(dp0)
    pscore = memory.alloc_numpy(score)
    expected = dp0.copy()
    for i in range(1, n):
        for j in range(1, n):
            expected[i, j] = max(
                expected[i - 1, j - 1] + score[i, j],
                expected[i - 1, j] - gap,
                expected[i, j - 1] - gap)
    return Instance(
        int_args=(pdp, pscore, n, gap),
        check=lambda mem: exact_check(mem, pdp, expected),
        work_items=(n - 1) * (n - 1),
    )


WORKLOAD = Workload(
    name="needle",
    category=IRREGULAR_COMPUTE,
    description="Needleman-Wunsch DP sweep (memory-carried recurrence)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=0,
)
