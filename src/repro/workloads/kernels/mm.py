"""mm — dense matrix multiply (regular, compute-intense)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, allclose_check, scaled

SOURCE = """
kernel mm(out float C[], float A[], float B[], int n) {
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            float acc = 0.0;
            for (int k = 0; k < n; k = k + 1) {
                acc = acc + A[i * n + k] * B[j * n + k];
            }
            C[i * n + j] = acc;
        }
    }
}
"""

_SIZES = scaled({"tiny": 8, "small": 16, "medium": 32})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    rng = np.random.default_rng(seed)
    a = rng.random((n, n))
    bt = rng.random((n, n))   # stored transposed: B[j*n+k] = B^T
    pc = memory.alloc(n * n)
    pa = memory.alloc_numpy(a)
    pb = memory.alloc_numpy(bt)
    expected = a @ bt.T
    return Instance(
        int_args=(pc, pa, pb, n),
        check=lambda mem: allclose_check(mem, pc, expected, rtol=1e-9),
        work_items=n * n,
    )


WORKLOAD = Workload(
    name="mm",
    category=REGULAR,
    description="dense matmul, transposed-B layout (unit-stride inner loop)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=2,
)
