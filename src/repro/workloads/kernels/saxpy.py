"""saxpy — scaled vector update (regular; the canonical streaming
kernel used throughout the DySER papers' introductory examples)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, allclose_check, scaled

SOURCE = """
kernel saxpy(out float y[], float x[], int n, float a) {
    for (int i = 0; i < n; i = i + 1) {
        y[i] = a * x[i] + y[i];
    }
}
"""

_SIZES = scaled({"tiny": 32, "small": 256, "medium": 2048})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    a = 2.5
    rng = np.random.default_rng(seed)
    x = rng.random(n)
    y = rng.random(n)
    py = memory.alloc_numpy(y)
    px = memory.alloc_numpy(x)
    expected = a * x + y
    return Instance(
        int_args=(py, px, n),
        fp_args=(a,),
        check=lambda mem: allclose_check(mem, py, expected),
        work_items=n,
    )


WORKLOAD = Workload(
    name="saxpy",
    category=REGULAR,
    description="y = a*x + y in-place streaming update",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=2,
)
