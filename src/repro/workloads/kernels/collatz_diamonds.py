"""collatz_diamonds — chained data-dependent diamonds
(irregular-control: the paper's second curtailing shape, DEEP_DIAMONDS —
if-conversion computes every path, so most fabric work is discarded)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (
    IRREGULAR_CONTROL,
    Instance,
    Workload,
    exact_check,
    scaled,
)

SOURCE = """
kernel collatz_diamonds(out int y[], int x[], int n) {
    for (int i = 0; i < n; i = i + 1) {
        int v = x[i];
        if (v & 1) { v = v * 3 + 1; } else { v = v >> 1; }
        if (v & 1) { v = v * 3 + 1; } else { v = v >> 1; }
        if (v & 1) { v = v * 3 + 1; } else { v = v >> 1; }
        if (v & 1) { v = v * 3 + 1; } else { v = v >> 1; }
        y[i] = v;
    }
}
"""

_SIZES = scaled({"tiny": 32, "small": 128, "medium": 512})


def _step(v: np.ndarray) -> np.ndarray:
    return np.where(v & 1, v * 3 + 1, v >> 1)


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    rng = np.random.default_rng(seed)
    x = rng.integers(1, 10_000, n).astype(np.int64)
    py = memory.alloc(n)
    px = memory.alloc_numpy(x)
    expected = x.copy()
    for _ in range(4):
        expected = _step(expected)
    return Instance(
        int_args=(py, px, n),
        check=lambda mem: exact_check(mem, py, expected),
        work_items=n,
    )


WORKLOAD = Workload(
    name="collatz_diamonds",
    category=IRREGULAR_CONTROL,
    description="four chained Collatz diamonds (deep-diamond shape)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=0,
)
