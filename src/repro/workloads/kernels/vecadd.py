"""vecadd — the sanity-check streaming kernel (regular)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, allclose_check, scaled

SOURCE = """
kernel vecadd(out float c[], float a[], float b[], int n) {
    for (int i = 0; i < n; i = i + 1) {
        c[i] = a[i] + b[i];
    }
}
"""

_SIZES = scaled({"tiny": 32, "small": 256, "medium": 2048})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    rng = np.random.default_rng(seed)
    a = rng.random(n)
    b = rng.random(n)
    pc = memory.alloc(n)
    pa = memory.alloc_numpy(a)
    pb = memory.alloc_numpy(b)
    expected = a + b
    return Instance(
        int_args=(pc, pa, pb, n),
        check=lambda mem: allclose_check(mem, pc, expected),
        work_items=n,
    )


WORKLOAD = Workload(
    name="vecadd",
    category=REGULAR,
    description="element-wise vector add (streaming sanity check)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=1,
)
