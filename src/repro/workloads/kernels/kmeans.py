"""kmeans — nearest-centroid assignment step (irregular-compute:
distance arithmetic plus a compare/select argmin chain)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (
    IRREGULAR_COMPUTE,
    Instance,
    Workload,
    exact_check,
    scaled,
)

SOURCE = """
kernel kmeans(out int assign[], float px[], float py[],
              float cx[], float cy[], int n, int k) {
    for (int i = 0; i < n; i = i + 1) {
        float best = 1.0e30;
        int bestc = 0;
        float xi = px[i];
        float yi = py[i];
        for (int c = 0; c < k; c = c + 1) {
            float dx = px[i] - cx[c];
            float dy = py[i] - cy[c];
            float d = dx * dx + dy * dy;
            if (d < best) {
                best = d;
                bestc = c;
            }
        }
        assign[i] = bestc;
    }
}
"""

_SIZES = scaled({"tiny": 16, "small": 64, "medium": 256})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    k = 6
    rng = np.random.default_rng(seed)
    px = rng.random(n)
    py = rng.random(n)
    cx = rng.random(k)
    cy = rng.random(k)
    passign = memory.alloc(n)
    ppx = memory.alloc_numpy(px)
    ppy = memory.alloc_numpy(py)
    pcx = memory.alloc_numpy(cx)
    pcy = memory.alloc_numpy(cy)
    d = ((px[:, None] - cx[None, :]) ** 2
         + (py[:, None] - cy[None, :]) ** 2)
    expected = np.argmin(d, axis=1).astype(np.int64)
    return Instance(
        int_args=(passign, ppx, ppy, pcx, pcy, n, k),
        check=lambda mem: exact_check(mem, passign, expected),
        work_items=n * k,
    )


WORKLOAD = Workload(
    name="kmeans",
    category=IRREGULAR_COMPUTE,
    description="k-means assignment (distance + argmin select chain)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=5,
)
