"""stencil2d — 5-point Jacobi sweep (regular)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, scaled

SOURCE = """
kernel stencil2d(out float B[], float A[], int n, float w) {
    for (int i = 1; i < n - 1; i = i + 1) {
        for (int j = 1; j < n - 1; j = j + 1) {
            B[i * n + j] = w * (A[i * n + j]
                + A[(i - 1) * n + j] + A[(i + 1) * n + j]
                + A[i * n + j - 1] + A[i * n + j + 1]);
        }
    }
}
"""

_SIZES = scaled({"tiny": 8, "small": 18, "medium": 40})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    w = 0.2
    rng = np.random.default_rng(seed)
    a = rng.random((n, n))
    pb = memory.alloc(n * n)
    pa = memory.alloc_numpy(a)
    expected = np.zeros((n, n))
    expected[1:-1, 1:-1] = w * (
        a[1:-1, 1:-1] + a[:-2, 1:-1] + a[2:, 1:-1]
        + a[1:-1, :-2] + a[1:-1, 2:])

    def check(mem):
        got = mem.read_numpy(pb, n * n).reshape(n, n)
        return bool(np.allclose(got[1:-1, 1:-1], expected[1:-1, 1:-1],
                                rtol=1e-9))

    return Instance(
        int_args=(pb, pa, n),
        fp_args=(w,),
        check=check,
        work_items=(n - 2) * (n - 2),
    )


WORKLOAD = Workload(
    name="stencil2d",
    category=REGULAR,
    description="5-point 2D Jacobi stencil sweep",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=5,
)
