"""fft_stage — one radix-2 butterfly pass of an FFT (regular).

One decimation-in-time stage with precomputed twiddles; both streams
(``j`` and ``j + half``) are unit-stride within a block, which is what
the transfer vectorizer wants.  The reference applies the identical
stage in numpy.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, scaled

SOURCE = """
kernel fft_stage(out float re[], out float im[], float wr[], float wi[],
                 int n, int half) {
    for (int base = 0; base < n; base = base + half + half) {
        for (int j = 0; j < half; j = j + 1) {
            int lo = base + j;
            int hi = lo + half;
            float tr = re[hi] * wr[j] - im[hi] * wi[j];
            float ti = re[hi] * wi[j] + im[hi] * wr[j];
            float ar = re[lo];
            float ai = im[lo];
            re[lo] = ar + tr;
            im[lo] = ai + ti;
            re[hi] = ar - tr;
            im[hi] = ai - ti;
        }
    }
}
"""

_SIZES = scaled({"tiny": 32, "small": 128, "medium": 1024})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    half = n // 4 if n >= 8 else n // 2
    rng = np.random.default_rng(seed)
    re = rng.random(n)
    im = rng.random(n)
    angles = -2.0 * np.pi * np.arange(half) / (2 * half)
    wr = np.cos(angles)
    wi = np.sin(angles)
    pre = memory.alloc_numpy(re)
    pim = memory.alloc_numpy(im)
    pwr = memory.alloc_numpy(wr)
    pwi = memory.alloc_numpy(wi)

    exp_re, exp_im = re.copy(), im.copy()
    for base in range(0, n, 2 * half):
        lo = slice(base, base + half)
        hi = slice(base + half, base + 2 * half)
        tr = exp_re[hi] * wr - exp_im[hi] * wi
        ti = exp_re[hi] * wi + exp_im[hi] * wr
        ar, ai = exp_re[lo].copy(), exp_im[lo].copy()
        exp_re[lo], exp_im[lo] = ar + tr, ai + ti
        exp_re[hi], exp_im[hi] = ar - tr, ai - ti

    def check(mem):
        got_re = mem.read_numpy(pre, n)
        got_im = mem.read_numpy(pim, n)
        return bool(np.allclose(got_re, exp_re, rtol=1e-9)
                    and np.allclose(got_im, exp_im, rtol=1e-9))

    return Instance(
        int_args=(pre, pim, pwr, pwi, n, half),
        check=check,
        work_items=n // 2,
    )


WORKLOAD = Workload(
    name="fft_stage",
    category=REGULAR,
    description="radix-2 FFT butterfly stage with precomputed twiddles",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=10,
)
