"""newton_lcd — batched Newton iterations (irregular-control: the
paper's first curtailing shape, LOOP_CARRIED_CONTROL — the continue
condition consumes the value the loop just computed, so invocations
cannot pipeline)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (
    IRREGULAR_CONTROL,
    Instance,
    Workload,
    allclose_check,
    scaled,
)

SOURCE = """
kernel newton_lcd(out float r[], float a[], int n, float eps, int cap) {
    for (int i = 0; i < n; i = i + 1) {
        float target = a[i];
        float x = target;
        int it = 0;
        while ((x * x - target > eps || target - x * x > eps)
               && it < cap) {
            x = 0.5 * (x + target / x);
            it = it + 1;
        }
        r[i] = x;
    }
}
"""

_SIZES = scaled({"tiny": 8, "small": 32, "medium": 128})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    eps = 1e-10
    cap = 64
    rng = np.random.default_rng(seed)
    a = rng.random(n) * 9.0 + 1.0
    pr = memory.alloc(n)
    pa = memory.alloc_numpy(a)

    expected = np.empty(n)
    for i, target in enumerate(a):
        x = target
        it = 0
        while abs(x * x - target) > eps and it < cap:
            x = 0.5 * (x + target / x)
            it += 1
        expected[i] = x

    return Instance(
        int_args=(pr, pa, n, cap),
        fp_args=(eps,),
        check=lambda mem: allclose_check(mem, pr, expected, rtol=1e-9),
        work_items=n,
    )


WORKLOAD = Workload(
    name="newton_lcd",
    category=IRREGULAR_CONTROL,
    description="Newton sqrt iterations (loop-carried control shape)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=6,
)
