"""conv2d — 3x3 convolution with an unrolled-in-source taps loop
(regular, compute-intense)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, scaled

SOURCE = """
kernel conv2d(out float B[], float A[], float K[], int n) {
    for (int i = 1; i < n - 1; i = i + 1) {
        for (int j = 1; j < n - 1; j = j + 1) {
            float acc = A[(i - 1) * n + j - 1] * K[0]
                      + A[(i - 1) * n + j]     * K[1]
                      + A[(i - 1) * n + j + 1] * K[2]
                      + A[i * n + j - 1]       * K[3]
                      + A[i * n + j]           * K[4]
                      + A[i * n + j + 1]       * K[5]
                      + A[(i + 1) * n + j - 1] * K[6]
                      + A[(i + 1) * n + j]     * K[7]
                      + A[(i + 1) * n + j + 1] * K[8];
            B[i * n + j] = acc;
        }
    }
}
"""

_SIZES = scaled({"tiny": 10, "small": 18, "medium": 34})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    rng = np.random.default_rng(seed)
    a = rng.random((n, n))
    k = rng.random(9)
    pb = memory.alloc(n * n)
    pa = memory.alloc_numpy(a)
    pk = memory.alloc_numpy(k)
    kernel = k.reshape(3, 3)
    expected = np.zeros((n, n))
    for di in range(3):
        for dj in range(3):
            expected[1:-1, 1:-1] += (
                kernel[di, dj] * a[di:n - 2 + di, dj:n - 2 + dj])

    def check(mem):
        got = mem.read_numpy(pb, n * n).reshape(n, n)
        return bool(np.allclose(got[1:-1, 1:-1], expected[1:-1, 1:-1],
                                rtol=1e-9))

    return Instance(
        int_args=(pb, pa, pk, n),
        check=check,
        work_items=(n - 2) * (n - 2),
    )


WORKLOAD = Workload(
    name="conv2d",
    category=REGULAR,
    description="3x3 image convolution (9-tap multiply-add tree)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=17,
)
