"""mriq — MRI gridding inner kernel, Parboil-style (regular).

The original Parboil mri-q accumulates ``phiMag[k] * cos/sin(expArg)``.
Our ISA (like the DySER FUs) has no trigonometric units, so — per the
substitution rule — the kernel evaluates a 4th-order polynomial
cosine/sine approximation inline; the numpy reference computes the
*identical polynomial*, so correctness checking is exact while the
compute structure (long FP multiply-add chain per sample) matches the
original's region shape.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, scaled

SOURCE = """
kernel mriq(out float Qr[], out float Qi[], float kx[], float mag[],
            int nk, float x) {
    float qr = 0.0;
    float qi = 0.0;
    for (int k = 0; k < nk; k = k + 1) {
        float e = kx[k] * x;
        float e2 = e * e;
        float c = 1.0 - e2 * 0.5 + e2 * e2 * 0.041666666666666664;
        float s = e - e2 * e * 0.16666666666666666;
        qr = qr + mag[k] * c;
        qi = qi + mag[k] * s;
    }
    Qr[0] = qr;
    Qi[0] = qi;
}
"""

_SIZES = scaled({"tiny": 32, "small": 256, "medium": 2048})


def prepare(memory, scale: str, seed: int) -> Instance:
    nk = _SIZES(scale)
    x = 0.37
    rng = np.random.default_rng(seed)
    kx = rng.random(nk) * 0.5
    mag = rng.random(nk)
    pqr = memory.alloc(1)
    pqi = memory.alloc(1)
    pkx = memory.alloc_numpy(kx)
    pmag = memory.alloc_numpy(mag)
    e = kx * x
    e2 = e * e
    c = 1.0 - e2 * 0.5 + e2 * e2 * (1.0 / 24.0)
    s = e - e2 * e * (1.0 / 6.0)
    exp_qr = float((mag * c).sum())
    exp_qi = float((mag * s).sum())

    def check(mem):
        return bool(
            np.isclose(mem.load_word(pqr), exp_qr, rtol=1e-6)
            and np.isclose(mem.load_word(pqi), exp_qi, rtol=1e-6))

    return Instance(
        int_args=(pqr, pqi, pkx, pmag, nk),
        fp_args=(x,),
        check=check,
        work_items=nk,
    )


WORKLOAD = Workload(
    name="mriq",
    category=REGULAR,
    description="MRI-Q-style sample accumulation (polynomial trig)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=16,
)
