"""tpacf_bin — angular-correlation binning (irregular-control in effect:
all of the kernel's arithmetic feeds the bin *address*, so the
access/execute partition leaves (almost) nothing for the fabric — the
non-computationally-intense irregular case of the paper's finding ii)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (
    IRREGULAR_CONTROL,
    Instance,
    Workload,
    exact_check,
    scaled,
)

SOURCE = """
kernel tpacf_bin(out int h[], float d1[], float d2[], int n, int bins) {
    for (int i = 0; i < n; i = i + 1) {
        float dot = d1[i] * d2[i];
        int b = int((dot + 1.0) * 0.5 * float(bins));
        b = min(b, bins - 1);
        b = max(b, 0);
        h[b] = h[b] + 1;
    }
}
"""

_SIZES = scaled({"tiny": 32, "small": 128, "medium": 512})


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    bins = 16
    rng = np.random.default_rng(seed)
    d1 = rng.random(n) * 2.0 - 1.0
    d2 = rng.random(n) * 2.0 - 1.0
    ph = memory.alloc(bins)
    pd1 = memory.alloc_numpy(d1)
    pd2 = memory.alloc_numpy(d2)
    dot = d1 * d2
    b = ((dot + 1.0) * 0.5 * bins).astype(np.int64)
    b = np.clip(b, 0, bins - 1)
    expected = np.bincount(b, minlength=bins).astype(np.int64)
    return Instance(
        int_args=(ph, pd1, pd2, n, bins),
        check=lambda mem: exact_check(mem, ph, expected),
        work_items=n,
    )


WORKLOAD = Workload(
    name="tpacf_bin",
    category=IRREGULAR_CONTROL,
    description="correlation binning (compute feeds the address; "
                "no execute slice survives)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=3,
)
