"""sad — sum of absolute differences (regular, integer compute:
the media-kernel pattern from Parboil's sad benchmark)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, exact_check, scaled

SOURCE = """
kernel sad(out int y[], int a[], int b[], int n, int window) {
    for (int w = 0; w < n / window; w = w + 1) {
        int acc = 0;
        int base = w * window;
        for (int i = 0; i < window; i = i + 1) {
            acc = acc + abs(a[base + i] - b[base + i]);
        }
        y[w] = acc;
    }
}
"""

_SIZES = scaled({"tiny": 64, "small": 256, "medium": 1024})
_WINDOW = 16


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 255, n).astype(np.int64)
    b = rng.integers(0, 255, n).astype(np.int64)
    windows = n // _WINDOW
    py = memory.alloc(windows)
    pa = memory.alloc_numpy(a)
    pb = memory.alloc_numpy(b)
    expected = np.abs(a - b).reshape(windows, _WINDOW).sum(axis=1)
    return Instance(
        int_args=(py, pa, pb, n, _WINDOW),
        check=lambda mem: exact_check(mem, py, expected),
        work_items=n,
    )


WORKLOAD = Workload(
    name="sad",
    category=REGULAR,
    description="windowed sum of absolute differences (integer media kernel)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=0,
)
