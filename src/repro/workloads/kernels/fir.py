"""fir — K-tap FIR filter (regular; overlapping taps exercise the
interface load deduplication the same way 2D stencils do, in 1D)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Instance, REGULAR, Workload, scaled

SOURCE = """
kernel fir(out float y[], float x[], float h[], int n) {
    for (int i = 0; i < n - 4; i = i + 1) {
        y[i] = x[i] * h[0] + x[i + 1] * h[1] + x[i + 2] * h[2]
             + x[i + 3] * h[3] + x[i + 4] * h[4];
    }
}
"""

_SIZES = scaled({"tiny": 40, "small": 200, "medium": 1024})
_TAPS = 5


def prepare(memory, scale: str, seed: int) -> Instance:
    n = _SIZES(scale)
    rng = np.random.default_rng(seed)
    x = rng.random(n)
    h = rng.random(_TAPS)
    py = memory.alloc(n)
    px = memory.alloc_numpy(x)
    ph = memory.alloc_numpy(h)
    valid = n - 4
    expected = sum(h[k] * x[k:valid + k] for k in range(_TAPS))

    def check(mem):
        got = mem.read_numpy(py, valid)
        return bool(np.allclose(got, expected, rtol=1e-9))

    return Instance(
        int_args=(py, px, ph, n),
        check=check,
        work_items=valid,
    )


WORKLOAD = Workload(
    name="fir",
    category=REGULAR,
    description="5-tap FIR filter (overlapping 1D taps)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=9,
)
