"""spmv — CSR sparse matrix-vector product (irregular but
compute-intense; the indirect ``x[col[idx]]`` access is the classic
irregular pattern the DySER compiler still extracts well)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (
    IRREGULAR_COMPUTE,
    Instance,
    Workload,
    allclose_check,
    scaled,
)

SOURCE = """
kernel spmv(out float y[], float vals[], int cols[], int rowptr[],
            float x[], int nrows) {
    for (int r = 0; r < nrows; r = r + 1) {
        float acc = 0.0;
        int end = rowptr[r + 1];
        for (int idx = rowptr[r]; idx < end; idx = idx + 1) {
            acc = acc + vals[idx] * x[cols[idx]];
        }
        y[r] = acc;
    }
}
"""

_SIZES = scaled({"tiny": 16, "small": 48, "medium": 160})


def prepare(memory, scale: str, seed: int) -> Instance:
    nrows = _SIZES(scale)
    rng = np.random.default_rng(seed)
    density = 0.25
    dense = rng.random((nrows, nrows))
    dense[rng.random((nrows, nrows)) > density] = 0.0
    # Guarantee at least one nonzero per row (and some empty rows too,
    # to exercise zero-trip inner loops — keep row 3 empty when possible).
    for r in range(nrows):
        if r == 3:
            dense[r, :] = 0.0
        elif not dense[r].any():
            dense[r, r % nrows] = 1.0
    x = rng.random(nrows)
    vals, cols, rowptr = [], [], [0]
    for r in range(nrows):
        nz = np.nonzero(dense[r])[0]
        vals.extend(dense[r, nz])
        cols.extend(int(c) for c in nz)
        rowptr.append(len(vals))
    py = memory.alloc(nrows)
    pvals = memory.alloc_numpy(np.array(vals))
    pcols = memory.alloc_numpy(np.array(cols, dtype=np.int64))
    prow = memory.alloc_numpy(np.array(rowptr, dtype=np.int64))
    px = memory.alloc_numpy(x)
    expected = dense @ x
    return Instance(
        int_args=(py, pvals, pcols, prow, px, nrows),
        check=lambda mem: allclose_check(mem, py, expected, rtol=1e-9),
        work_items=len(vals),
    )


WORKLOAD = Workload(
    name="spmv",
    category=IRREGULAR_COMPUTE,
    description="CSR sparse matrix-vector product (indirect gather)",
    source=SOURCE,
    prepare=prepare,
    flops_per_item=2,
)
