"""The benchmark suite registry.

Mirrors the paper's methodology: Parboil/Rodinia-style throughput
kernels, split into the three characterization categories the compiler
study uses (regular, computationally-intense irregular, and
non-computationally-intense irregular / curtailing-shape code).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import (
    CATEGORIES,
    IRREGULAR_COMPUTE,
    IRREGULAR_CONTROL,
    REGULAR,
    Instance,
    Workload,
)
from repro.workloads.kernels import (
    collatz_diamonds,
    conv2d,
    dotprod,
    fft_stage,
    fir,
    hist_weighted,
    kmeans,
    mm,
    mriq,
    nbody,
    needle,
    newton_lcd,
    sad,
    saxpy,
    spmv,
    stencil2d,
    tpacf_bin,
    vecadd,
)

_MODULES = (
    vecadd, saxpy, dotprod, mm, stencil2d, conv2d, fft_stage, nbody,
    mriq, sad, fir, spmv, kmeans, needle, hist_weighted, newton_lcd,
    collatz_diamonds, tpacf_bin,
)

#: name -> Workload for the whole suite.
SUITE: dict[str, Workload] = {m.WORKLOAD.name: m.WORKLOAD for m in _MODULES}


def get(name: str) -> Workload:
    try:
        return SUITE[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; have {sorted(SUITE)}") from None


def names(category: str | None = None) -> list[str]:
    """Workload names, optionally filtered by category."""
    if category is None:
        return list(SUITE)
    if category not in CATEGORIES:
        raise WorkloadError(f"unknown category {category!r}")
    return [n for n, w in SUITE.items() if w.category == category]


__all__ = [
    "IRREGULAR_COMPUTE",
    "IRREGULAR_CONTROL",
    "Instance",
    "REGULAR",
    "SUITE",
    "Workload",
    "get",
    "names",
]
