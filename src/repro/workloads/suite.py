"""The benchmark suite registry.

Mirrors the paper's methodology: Parboil/Rodinia-style throughput
kernels, split into the three characterization categories the compiler
study uses (regular, computationally-intense irregular, and
non-computationally-intense irregular / curtailing-shape code), plus
the ``irregular-dsl`` tier authored in the :mod:`repro.lang` DSL.

The registry is *dynamic*: :func:`register_workload` adds kernels at
runtime, and :func:`get` lazily resolves content-addressed ``dsl:``
names through the kernel store (:mod:`repro.lang.store`) so engine
pool workers and service shards can run a submitted kernel they have
never seen in-process.
"""

from __future__ import annotations

import difflib

from repro.errors import WorkloadError
from repro.workloads.base import (
    CATEGORIES,
    IRREGULAR_COMPUTE,
    IRREGULAR_CONTROL,
    IRREGULAR_DSL,
    REGULAR,
    Instance,
    Workload,
)
from repro.workloads.kernels import (
    collatz_diamonds,
    conv2d,
    dotprod,
    fft_stage,
    fir,
    hist_weighted,
    kmeans,
    mm,
    mriq,
    nbody,
    needle,
    newton_lcd,
    sad,
    saxpy,
    spmv,
    stencil2d,
    tpacf_bin,
    vecadd,
)

_MODULES = (
    vecadd, saxpy, dotprod, mm, stencil2d, conv2d, fft_stage, nbody,
    mriq, sad, fir, spmv, kmeans, needle, hist_weighted, newton_lcd,
    collatz_diamonds, tpacf_bin,
)

#: name -> Workload for the whole suite.
SUITE: dict[str, Workload] = {m.WORKLOAD.name: m.WORKLOAD for m in _MODULES}


def register_workload(workload: Workload, *, replace: bool = False) -> None:
    """Add a workload to the live registry.

    Built-in names are protected; pass ``replace=True`` only for
    content-addressed ``dsl:`` names (re-registering the same content
    is idempotent by construction).
    """
    if workload.name in SUITE and not replace:
        raise WorkloadError(
            f"workload {workload.name!r} is already registered",
            workload=workload.name)
    SUITE[workload.name] = workload


def get(name: str) -> Workload:
    try:
        return SUITE[name]
    except KeyError:
        pass
    if name.startswith("dsl:"):
        # Content-addressed submission: resolve through the kernel
        # store (re-validated + re-lowered), then cache in-process.
        from repro.lang.store import load_workload

        workload = load_workload(name)
        if workload is not None:
            SUITE[name] = workload
            return workload
    close = difflib.get_close_matches(name, SUITE, n=1)
    hint = f" (closest match: {close[0]!r})" if close else ""
    raise WorkloadError(
        f"unknown workload {name!r};{hint} have {sorted(SUITE)}",
        workload=name, suggestion=(close[0] if close else None))


def names(category: str | None = None) -> list[str]:
    """Workload names, optionally filtered by category."""
    if category is None:
        return list(SUITE)
    if category not in CATEGORIES:
        close = difflib.get_close_matches(category, CATEGORIES, n=1)
        hint = f" (closest match: {close[0]!r})" if close else ""
        raise WorkloadError(
            f"unknown category {category!r};{hint} have "
            f"{sorted(CATEGORIES)}",
            category=category, suggestion=(close[0] if close else None))
    return [n for n, w in SUITE.items() if w.category == category]


def _register_dsl_tier() -> None:
    from repro.workloads.dsl_kernels import build_workloads

    for workload in build_workloads().values():
        register_workload(workload)


_register_dsl_tier()


__all__ = [
    "IRREGULAR_COMPUTE",
    "IRREGULAR_CONTROL",
    "IRREGULAR_DSL",
    "Instance",
    "REGULAR",
    "SUITE",
    "Workload",
    "get",
    "names",
    "register_workload",
]
