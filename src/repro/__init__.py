"""SPARC-DySER prototype reproduction.

Reimplementation, in pure Python, of the system evaluated in
"Performance evaluation of a DySER FPGA prototype system spanning the
compiler, microarchitecture, and hardware implementation" (ISPASS 2015):

- :mod:`repro.isa` — SPARC-flavoured host ISA with the DySER extension;
- :mod:`repro.cpu` — OpenSPARC-T1-like in-order core timing model;
- :mod:`repro.dyser` — the DySER fabric (configurations, dataflow
  execution, flow control, configuration cache);
- :mod:`repro.compiler` — the co-designed compiler (kernel language to
  ISA, with access/execute partitioning and spatial scheduling);
- :mod:`repro.energy` / :mod:`repro.fpga` — power and FPGA resource models;
- :mod:`repro.workloads` — the benchmark suite;
- :mod:`repro.harness` — experiment runner reproducing the paper's
  tables and figures;
- :mod:`repro.engine` — parallel sweep engine with a persistent,
  content-addressed artifact cache (the substrate for design-space
  exploration).
"""

from repro.cpu import Core, CoreConfig, ExecStats, Memory
from repro.dyser import (
    Dfg,
    DyserConfig,
    DyserDevice,
    DyserTimingParams,
    Fabric,
    FabricGeometry,
)
from repro.errors import ReproError
from repro.isa import Instruction, Opcode, Program, assemble

__version__ = "1.0.0"

__all__ = [
    "Core",
    "CoreConfig",
    "Dfg",
    "DyserConfig",
    "DyserDevice",
    "DyserTimingParams",
    "ExecStats",
    "Fabric",
    "FabricGeometry",
    "Instruction",
    "Memory",
    "Opcode",
    "Program",
    "ReproError",
    "assemble",
    "__version__",
]
