"""SPARC-DySER prototype reproduction.

Reimplementation, in pure Python, of the system evaluated in
"Performance evaluation of a DySER FPGA prototype system spanning the
compiler, microarchitecture, and hardware implementation" (ISPASS 2015):

- :mod:`repro.isa` — SPARC-flavoured host ISA with the DySER extension;
- :mod:`repro.cpu` — OpenSPARC-T1-like in-order core timing model;
- :mod:`repro.dyser` — the DySER fabric (configurations, dataflow
  execution, flow control, configuration cache);
- :mod:`repro.compiler` — the co-designed compiler (kernel language to
  ISA, with access/execute partitioning and spatial scheduling);
- :mod:`repro.energy` / :mod:`repro.fpga` — power and FPGA resource models;
- :mod:`repro.workloads` — the benchmark suite;
- :mod:`repro.harness` — experiment runner reproducing the paper's
  tables and figures, behind the :class:`RunConfig` run API;
- :mod:`repro.engine` — parallel sweep engine with a persistent,
  content-addressed artifact cache (the substrate for design-space
  exploration);
- :mod:`repro.obs` — observability: structured tracing, named metrics,
  Chrome/Perfetto timeline export, ``repro profile``;
- :mod:`repro.service` — simulation-as-a-service: the ``repro serve``
  asyncio daemon (admission control, micro-batched scheduling,
  Prometheus ``/metrics``) and its ``repro submit`` client;
- :mod:`repro.harness.fuzz` — differential fuzzing and chaos harness
  (``repro fuzz``): seeded interface-aware program generation,
  parity/lint/IR oracles, service fault injection, and a replayable
  shrunk-case corpus under ``tests/corpus/``;
- :mod:`repro.lang` — the validated kernel DSL (``repro kernel``,
  ``POST /v2/kernels``): parse → check (stable ``RPR5xx``
  diagnostics, fail-closed) → lower into the same workload form the
  built-in suite uses, persisted content-addressed as ``dsl:<hash>``.

This module is the **stable public facade**: everything in ``__all__``
is importable as ``from repro import ...`` and the CLI goes through it
exclusively.  The canonical entry points::

    from repro import RunConfig, run_workload, compare, trace_workload

    result = run_workload(RunConfig(workload="mm", mode="dyser"))
    traced = trace_workload("mm", scale="tiny")     # result.events set
"""

# NOTE: repro.cpu must be imported before repro.compiler/repro.dyser —
# the machine models participate in an import cycle (cpu.core ↔
# dyser.interface) whose safe entry point is the cpu package.
from repro.cpu import Core, CoreConfig, ExecStats, FastCore, Memory
from repro.analysis import (
    Diagnostic,
    DiagnosticReport,
    PerfPrediction,
    RegionPerf,
    Severity,
    analyze_program,
    analyze_workload,
    describe_code,
    estimate_job_cost,
    lint_config,
    lint_spec,
    lint_workload,
    perf_report,
    verify_function,
)
from repro.dyser import (
    Dfg,
    DyserConfig,
    DyserDevice,
    DyserTimingParams,
    Fabric,
    FabricGeometry,
    SteadyState,
)
from repro.compiler import (
    CompileResult,
    CompilerOptions,
    RegionReport,
    compile_dyser,
    compile_scalar,
)
from repro.energy import EnergyModel, EnergyParams, EnergyReport
from repro.engine import (
    ArtifactCache,
    EngineFailure,
    EngineReport,
    JobSpec,
    SweepSpec,
    run_comparisons,
    run_jobs,
    suite_jobs,
    sweep,
)
from repro.errors import ReproError, WorkloadError, stable_error_string
from repro.fpga import utilization_table
from repro.harness import (
    Backend,
    Comparison,
    DEFAULT_BACKEND,
    ParityReport,
    RunConfig,
    RunResult,
    TraceOptions,
    backend_names,
    compare,
    execute,
    format_series,
    format_table,
    geomean,
    get_backend,
    resolve_backend,
    run_workload,
    verify_parity,
)
from repro.harness.backends import temporary_backend, unregister_backend
from repro.harness.fuzz import (
    CaseGenerator,
    Finding,
    FuzzCase,
    FuzzOptions,
    FuzzReport,
    chaos_scenario_names,
    iter_corpus,
    replay_entry,
    run_chaos,
    run_fuzz,
)
from repro.isa import Instruction, Opcode, Program, assemble
from repro.lang import (
    KernelSpec,
    KernelStore,
    check_source,
    lower_spec,
    lowered_source,
    parse_kernel_source,
    set_default_kernel_dir,
)
from repro.obs import (
    EventStream,
    MetricsRegistry,
    ProfileReport,
    invocation_table,
    profile_workload,
    to_chrome_trace,
    trace_workload,
    write_chrome_trace,
)
from repro.service import (
    Client,
    GatewayService,
    GatewayThread,
    JobHandle,
    JobStatus,
    ReproService,
    ServiceClient,
    ServiceError,
    TenancyController,
    controller_from_config,
)
from repro.workloads import SUITE, get as get_workload
from repro.workloads.suite import register_workload

__version__ = "1.3.0"

__all__ = [
    # run API
    "RunConfig",
    "RunResult",
    "Comparison",
    "TraceOptions",
    "run_workload",
    "execute",
    "compare",
    # simulation backends
    "Backend",
    "DEFAULT_BACKEND",
    "ParityReport",
    "backend_names",
    "get_backend",
    "resolve_backend",
    "temporary_backend",
    "unregister_backend",
    "verify_parity",
    # fuzzing & chaos
    "CaseGenerator",
    "Finding",
    "FuzzCase",
    "FuzzOptions",
    "FuzzReport",
    "chaos_scenario_names",
    "iter_corpus",
    "replay_entry",
    "run_chaos",
    "run_fuzz",
    # observability
    "EventStream",
    "MetricsRegistry",
    "ProfileReport",
    "trace_workload",
    "profile_workload",
    "invocation_table",
    "to_chrome_trace",
    "write_chrome_trace",
    # service
    "Client",
    "GatewayService",
    "GatewayThread",
    "JobHandle",
    "JobStatus",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "TenancyController",
    "controller_from_config",
    # engine
    "ArtifactCache",
    "EngineFailure",
    "EngineReport",
    "JobSpec",
    "SweepSpec",
    "run_comparisons",
    "run_jobs",
    "suite_jobs",
    "sweep",
    # compiler
    "CompileResult",
    "CompilerOptions",
    "RegionReport",
    "compile_dyser",
    "compile_scalar",
    # machine models
    "Core",
    "CoreConfig",
    "ExecStats",
    "FastCore",
    "Memory",
    "SteadyState",
    "Dfg",
    "DyserConfig",
    "DyserDevice",
    "DyserTimingParams",
    "Fabric",
    "FabricGeometry",
    "EnergyModel",
    "EnergyParams",
    "EnergyReport",
    "utilization_table",
    # ISA
    "Instruction",
    "Opcode",
    "Program",
    "assemble",
    # kernel DSL
    "KernelSpec",
    "KernelStore",
    "check_source",
    "lower_spec",
    "lowered_source",
    "parse_kernel_source",
    "set_default_kernel_dir",
    # workloads + reporting
    "SUITE",
    "get_workload",
    "register_workload",
    "format_series",
    "format_table",
    "geomean",
    # static analysis
    "Diagnostic",
    "DiagnosticReport",
    "PerfPrediction",
    "RegionPerf",
    "Severity",
    "analyze_program",
    "analyze_workload",
    "describe_code",
    "estimate_job_cost",
    "lint_config",
    "lint_spec",
    "lint_workload",
    "perf_report",
    "verify_function",
    # errors
    "ReproError",
    "WorkloadError",
    "stable_error_string",
    "__version__",
]
