"""Execution statistics: cycle accounting and instruction mixes.

The timing model attributes every cycle to exactly one bucket so the E3
cycle-breakdown experiment can decompose where time goes, the way the
paper's microarchitecture analysis does.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field, fields

from repro.isa.opcodes import InsnClass
from repro.obs.metrics import MetricsRegistry


class StallCause(enum.Enum):
    """Why a cycle was not an issue cycle."""

    DATA_HAZARD = "data_hazard"          # waiting on a producer (non-memory)
    LOAD_MISS = "load_miss"              # D$ miss latency exposed
    FETCH_MISS = "fetch_miss"            # I$ miss bubble
    BRANCH = "branch"                    # taken-branch redirect bubble
    STRUCTURAL_FPU = "structural_fpu"    # unpipelined FPU busy
    DYSER_SEND = "dyser_send"            # input port FIFO full
    DYSER_RECV = "dyser_recv"            # output not produced yet
    DYSER_CONFIG = "dyser_config"        # configuration load
    LSU_BUSY = "lsu_busy"                # vector transfer occupying the LSU


@dataclass
class ExecStats:
    """Counters for one simulated run."""

    cycles: int = 0
    instructions: int = 0
    insn_mix: Counter = field(default_factory=Counter)
    stall_cycles: Counter = field(default_factory=Counter)
    branches_taken: int = 0
    dyser_invocations: int = 0
    dyser_values_sent: int = 0
    dyser_values_received: int = 0
    dyser_config_loads: int = 0
    dyser_config_hits: int = 0
    dyser_fu_ops: int = 0
    dyser_switch_hops: int = 0
    dyser_config_words: int = 0
    dcache_hits: int = 0
    dcache_misses: int = 0
    icache_misses: int = 0
    #: Open-ended subsystem counters (:mod:`repro.obs.metrics`): new
    #: instrumentation registers named metrics here instead of growing
    #: this dataclass and every serializer that mirrors it.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry,
                                     compare=False, repr=False)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def total_stalls(self) -> int:
        return sum(self.stall_cycles.values())

    @property
    def issue_cycles(self) -> int:
        """Cycles spent actually issuing instructions."""
        return self.cycles - self.total_stalls

    def count(self, iclass: InsnClass, n: int = 1) -> None:
        self.insn_mix[iclass] += n
        self.instructions += n

    def stall(self, cause: StallCause, cycles: int) -> None:
        if cycles > 0:
            self.stall_cycles[cause] += cycles

    def class_count(self, iclass: InsnClass) -> int:
        return self.insn_mix.get(iclass, 0)

    def dyser_instruction_count(self) -> int:
        return sum(
            self.insn_mix.get(c, 0)
            for c in (
                InsnClass.DYSER_INIT, InsnClass.DYSER_SEND,
                InsnClass.DYSER_RECV, InsnClass.DYSER_LOAD,
                InsnClass.DYSER_STORE,
            )
        )

    # -- (de)serialization -------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe counters.

        Scalar fields are discovered from the dataclass, so adding a
        counter field (or registering a named metric) needs no
        serializer edit.
        """
        data: dict = {}
        for f in fields(self):
            if f.name in ("insn_mix", "stall_cycles", "metrics"):
                continue
            data[f.name] = getattr(self, f.name)
        data["insn_mix"] = {k.name: v for k, v in self.insn_mix.items()}
        data["stall_cycles"] = {
            k.name: v for k, v in self.stall_cycles.items()}
        metrics = self.metrics.to_dict()
        if metrics:
            data["metrics"] = metrics
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExecStats":
        scalars = {
            f.name: data[f.name] for f in fields(cls)
            if f.name not in ("insn_mix", "stall_cycles", "metrics")
        }
        stats = cls(**scalars)
        stats.insn_mix = Counter(
            {InsnClass[k]: v for k, v in data["insn_mix"].items()})
        stats.stall_cycles = Counter(
            {StallCause[k]: v for k, v in data["stall_cycles"].items()})
        stats.metrics = MetricsRegistry.from_dict(data.get("metrics", {}))
        return stats

    def breakdown(self) -> dict[str, int]:
        """Cycle accounting: issue plus one entry per stall cause."""
        out = {"issue": self.issue_cycles}
        for cause in StallCause:
            cycles = self.stall_cycles.get(cause, 0)
            if cycles:
                out[cause.value] = cycles
        return out

    def summary(self) -> str:
        lines = [
            f"cycles={self.cycles} insns={self.instructions} "
            f"ipc={self.ipc:.3f}",
        ]
        mix = ", ".join(
            f"{c.value}={n}" for c, n in sorted(
                self.insn_mix.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"mix: {mix}")
        if self.total_stalls:
            stalls = ", ".join(
                f"{c.value}={n}" for c, n in sorted(
                    self.stall_cycles.items(), key=lambda kv: -kv[1])
            )
            lines.append(f"stalls: {stalls}")
        if self.dyser_invocations:
            lines.append(
                f"dyser: invocations={self.dyser_invocations} "
                f"sent={self.dyser_values_sent} "
                f"received={self.dyser_values_received} "
                f"config_loads={self.dyser_config_loads} "
                f"config_hits={self.dyser_config_hits}"
            )
        return "\n".join(lines)
