"""The OpenSPARC-T1-flavoured host core model."""

from repro.cpu.batchcore import PER_POINT_FIELDS, BatchCore
from repro.cpu.batchdecode import (
    batch_decode_cache_size,
    batch_decode_program,
    clear_batch_decode_caches,
)
from repro.cpu.cache import Cache, CacheConfig, dcache_config, icache_config
from repro.cpu.core import Core, CoreConfig
from repro.cpu.decode import (
    DecodedProgram,
    clear_decode_caches,
    decode_cache_size,
    decode_program,
)
from repro.cpu.fastcore import FastCore
from repro.cpu.memory import WORD_BYTES, Memory
from repro.cpu.regfile import FpRegFile, IntRegFile, wrap64
from repro.cpu.statistics import ExecStats, StallCause

__all__ = [
    "BatchCore",
    "Cache",
    "CacheConfig",
    "Core",
    "CoreConfig",
    "DecodedProgram",
    "ExecStats",
    "FastCore",
    "PER_POINT_FIELDS",
    "batch_decode_cache_size",
    "batch_decode_program",
    "clear_batch_decode_caches",
    "clear_decode_caches",
    "decode_cache_size",
    "decode_program",
    "FpRegFile",
    "IntRegFile",
    "Memory",
    "StallCause",
    "WORD_BYTES",
    "dcache_config",
    "icache_config",
    "wrap64",
]
