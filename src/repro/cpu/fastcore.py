"""Fast backend: basic-block interpreter, cycle-exact with :class:`Core`.

``FastCore`` executes programs predecoded by :mod:`repro.cpu.decode`.
Where the reference core re-decodes every instruction every cycle (enum
dispatch, per-call latency tables, attribute lookups), the fast core
walks a flat tuple of specialized closures per basic block and folds
instruction-mix accounting to one update per block execution.  All
*dynamic* modeling — cache hits and misses, register scoreboard waits,
the unpipelined FPU, branch outcomes, DySER port flow control — runs
exactly as in the reference; only the static work is hoisted.

The contract is **cycle-exact equality**, not approximation: for any
program and :class:`CoreConfig`, ``FastCore(...).run()`` must produce
the same ``ExecStats`` (cycles, instruction mix, stall breakdown,
cache and DySER counters) and the same architectural state as
``Core(...).run()``.  ``repro.harness.parity.verify_parity`` and
``tests/test_fastcore.py`` enforce this across the workload suite and
randomly generated programs.

Not supported (by design): event tracing and instruction traces.  The
fast core *refuses* to construct with tracing enabled rather than
silently dropping events — the harness backend dispatch
(:mod:`repro.harness.backends`) routes traced runs to the reference
core, whose cycles are identical by the parity contract.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.cpu.cache import Cache
from repro.cpu.core import Core, CoreConfig, _INSN_BYTES
from repro.cpu.decode import decode_program
from repro.cpu.memory import Memory
from repro.cpu.regfile import FpRegFile, IntRegFile
from repro.cpu.statistics import ExecStats, StallCause
from repro.dyser.interface import DyserDevice
from repro.isa.opcodes import InsnClass
from repro.isa.program import Program

#: StallCause by fast-path integer ID (declaration order).
_CAUSES = tuple(StallCause)


class _Ctx:
    """Mutable per-run state the decoded handlers bind against.

    Scoreboard layout:

    - ``irdy``/``frdy``: per-register ready cycles,
      ``icz``/``fcz``: the stall-cause ID (or None) a wait on that
      register is attributed to;
    - ``st``: stall cycles by cause ID (folded into the enum-keyed
      Counter at the end of the run);
    - ``sc``: ``[fpu_free, lsu_free, fabric_ready, store_queue_busy,
      cur_fetch_line]``;
    - ``misc``: ``[branches_taken]``.
    """

    __slots__ = (
        "ir", "fr", "irdy", "frdy", "icz", "fcz", "st", "sc", "misc",
        "mem", "dev", "da", "fa", "vca", "lats", "pipelined", "penalty",
        "ihit", "dhit", "rate",
    )

    def __init__(self, core: "FastCore") -> None:
        cfg = core.config
        self.ir = core.iregs._regs
        self.fr = core.fregs._regs
        self.irdy = [0] * 32
        self.frdy = [0] * 32
        self.icz: list = [None] * 32
        self.fcz: list = [None] * 32
        self.st = [0] * len(_CAUSES)
        self.sc = [0, 0, 0, 0, -1]
        self.misc = [0]
        self.mem = core.memory
        self.dev = core.dyser
        self.da = core._data_access
        self.fa = core._fetch_access
        self.vca = core._vector_cache_access
        self.lats = {
            InsnClass.ALU: cfg.alu_latency,
            InsnClass.MUL: cfg.mul_latency,
            InsnClass.DIV: cfg.div_latency,
            InsnClass.FPU: cfg.fpu_latency,
            InsnClass.FDIV: cfg.fdiv_latency,
        }
        self.pipelined = cfg.fpu_pipelined
        self.penalty = cfg.branch_taken_penalty
        self.ihit = cfg.icache.hit_latency
        self.dhit = cfg.dcache.hit_latency
        self.rate = max(1, cfg.vector_port_words_per_cycle)


class FastCore:
    """Drop-in replacement for :class:`~repro.cpu.core.Core` on the
    untraced path.  Same constructor signature; same ``run()`` result.
    """

    def __init__(
        self,
        program: Program,
        memory: Memory,
        dyser: DyserDevice | None = None,
        config: CoreConfig | None = None,
        events=None,
        trace_instructions: bool = False,
    ) -> None:
        if events is not None or trace_instructions:
            raise SimulationError(
                "FastCore does not support event tracing; "
                "use the reference backend for traced runs"
            )
        if not program.is_linked:
            program.link()
        program.validate()
        self.program = program
        self.memory = memory
        self.config = config or CoreConfig()
        if self.config.trace_limit:
            raise SimulationError(
                "FastCore does not support instruction traces "
                "(CoreConfig.trace_limit); use the reference backend"
            )
        self.dyser = dyser
        if dyser is not None:
            if not self.config.has_dyser:
                raise SimulationError(
                    "DySER device attached to a core configured without one"
                )
            dyser.register_program(program)
        self.iregs = IntRegFile()
        self.fregs = FpRegFile()
        self.icache = Cache(self.config.icache)
        self.dcache = Cache(self.config.dcache)
        self.l2 = Cache(self.config.l2) if self.config.l2 else None
        self.stats = ExecStats()
        #: Interface parity with Core; always empty (tracing refused).
        self.trace: list[tuple[int, int, str]] = []
        self.events = None
        self.trace_instructions = False

    # Shared helpers: byte-for-byte the reference implementations, so
    # the cache hierarchy and calling convention can never drift.
    set_args = Core.set_args
    _data_access = Core._data_access
    _fetch_access = Core._fetch_access
    _vector_cache_access = Core._vector_cache_access
    _finalize_stats = Core._finalize_stats

    def run(self) -> ExecStats:
        if self.program.spill_words:
            spill_base = self.memory.alloc(self.program.spill_words)
            self.iregs.write(28, spill_base)
        cfg = self.config
        insns_per_line = max(1, cfg.icache.line_bytes // _INSN_BYTES)
        decoded = decode_program(self.program, insns_per_line)
        ctx = _Ctx(self)
        bound = decoded.bind(ctx)

        limit = cfg.max_instructions
        name = self.program.name
        counts = [0] * len(bound)
        t = 0
        executed = 0
        bi = 0
        while True:
            if bi < 0:
                if bi == -1:        # HALT retired
                    break
                # fell off the end (reference checks the instruction
                # limit before the fetch that faults)
                if executed >= limit:
                    raise SimulationError(
                        f"instruction limit {limit} exceeded "
                        f"(runaway loop in {name}?)"
                    )
                raise SimulationError(
                    f"pc {decoded.n} fell off the end of {name}"
                )
            handlers, term, length, starts = bound[bi]
            if executed + length > limit:
                # The limit lands inside this block: fall back to
                # per-instruction checks in reference order.
                nh = len(handlers)
                for k in range(length):
                    if executed >= limit:
                        raise SimulationError(
                            f"instruction limit {limit} exceeded "
                            f"(runaway loop in {name}?)"
                        )
                    executed += 1
                    end = starts[k + 1] if k + 1 < length else nh
                    for i in range(starts[k], end):
                        t = handlers[i](t)
                counts[bi] += 1
                t, bi = term(t)
                continue
            executed += length
            counts[bi] += 1
            for h in handlers:
                t = h(t)
            t, bi = term(t)

        stats = self.stats
        mix = stats.insn_mix
        total = 0
        blocks = decoded.blocks
        for idx, cnt in enumerate(counts):
            if not cnt:
                continue
            for iclass, m in blocks[idx].mix:
                mix[iclass] += m * cnt
                total += m * cnt
        stats.instructions += total
        stats.branches_taken += ctx.misc[0]
        stall = stats.stall_cycles
        for cid, cycles in enumerate(ctx.st):
            if cycles:
                stall[_CAUSES[cid]] += cycles
        stats.cycles = t
        self._finalize_stats()
        return stats
