"""Predecode: programs -> basic blocks of specialized handler closures.

This is the static half of the fast backend (:mod:`repro.cpu.fastcore`).
At load time each program is decoded **once** into basic blocks; every
instruction becomes a *handler maker* — a closure factory specialized on
the instruction's static operands (register indices, immediates, ports,
branch targets).  At run time the fast core binds each maker to a
:class:`~repro.cpu.fastcore._Ctx` (register files, scoreboard arrays,
cache models, the DySER device) producing a flat tuple of handlers per
block; executing a block is then just ``for h in handlers: t = h(t)``.

The decode result is **config-independent**: microarchitectural numbers
(latencies, penalties, cache hit latencies, the vector port rate) are
read from the context at *bind* time, so one decode serves every
:class:`~repro.cpu.core.CoreConfig` with the same I$ line geometry.

Cycle-exactness contract: every handler replicates the corresponding
case of :meth:`repro.cpu.core.Core.run` — same issue-floor rules, same
stall-cause attribution (including the ``cause or DATA_HAZARD`` default
and the LSU_BUSY refinement on DySER memory ops), same functional
semantics (64-bit wrapping, r0 discipline, division conventions).  The
differential harness in :mod:`repro.harness.parity` enforces this.

The decode cache is keyed by program *identity* (``id()`` plus a
liveness check through a weak reference — :class:`~repro.isa.program.
Program` is a mutable dataclass and therefore unhashable) and by the
I$ line geometry, and is evicted when the program is collected.
``clear_decode_caches()`` drops everything, for test isolation and
:func:`repro.harness.runner.clear_caches`.
"""

from __future__ import annotations

import math
import weakref
from collections import Counter
from dataclasses import dataclass

from repro.dyser.ops import int_div, int_rem
from repro.errors import SimulationError
from repro.cpu.regfile import wrap64
from repro.isa.opcodes import InsnClass, Opcode, VECTOR_OPS, WIDE_OPS
from repro.isa.program import Program

_INSN_BYTES = 4
_M64 = (1 << 64) - 1
_H64 = 1 << 63
_W64 = 1 << 64

#: StallCause IDs, by declaration order of :class:`repro.cpu.statistics.
#: StallCause` (the fast path accumulates into a flat int array and only
#: converts back to the enum-keyed Counter when the run finishes).
DATA_HAZARD = 0
LOAD_MISS = 1
FETCH_MISS = 2
BRANCH = 3
STRUCTURAL_FPU = 4
DYSER_SEND = 5
DYSER_RECV = 6
DYSER_CONFIG = 7
LSU_BUSY = 8


# ---------------------------------------------------------------------------
# Static operand analysis (mirrors core.py's source-register rules)
# ---------------------------------------------------------------------------

def int_alu_srcs(insn) -> tuple:
    """Timing source registers of an integer ALU/MUL/DIV instruction.

    Mirrors the reference core exactly: SEL waits on all three sources;
    register-immediate forms (mnemonics ending in ``i`` with an
    immediate present) wait only on rs1; everything else on rs1+rs2.
    """
    op = insn.op
    if op is Opcode.SEL:
        return (insn.rs1, insn.rs2, insn.rs3)
    if insn.imm is not None and op.value.endswith("i"):
        return (insn.rs1,)
    return (insn.rs1, insn.rs2)


def fp_insn_srcs(insn) -> tuple[tuple, tuple]:
    """(int_srcs, fp_srcs) of an FPU/FDIV instruction, as the core waits
    on them."""
    op = insn.op
    O = Opcode
    if op is O.I2F:
        return (insn.rs1,), ()
    if op is O.F2I:
        return (), (insn.rs1,)
    if op in (O.FSQRT, O.FNEG, O.FABS):
        return (), (insn.rs1,)
    if op in (O.FLT, O.FLE, O.FEQ):
        return (), (insn.rs1, insn.rs2)
    if op is O.FSEL:
        return (insn.rs1,), (insn.rs2, insn.rs3)
    return (), (insn.rs1, insn.rs2)


#: FP-class opcodes that retire into the *integer* register file.
FP_INT_DEST = frozenset({Opcode.FLT, Opcode.FLE, Opcode.FEQ, Opcode.F2I})


# ---------------------------------------------------------------------------
# Specialized integer evaluators (tiny exec-codegen, cached per pattern)
# ---------------------------------------------------------------------------

#: Expression template per integer opcode; ``{a}``/``{b}`` are the
#: operand slots.  Semantics match ``Core._eval_int`` verbatim.
_INT_EXPR = {
    "add": "{a} + {b}", "addi": "{a} + {b}",
    "sub": "{a} - {b}",
    "mul": "{a} * {b}", "muli": "{a} * {b}",
    "div": "int_div({a}, {b})",
    "rem": "int_rem({a}, {b})",
    "and": "{a} & {b}", "andi": "{a} & {b}",
    "or": "{a} | {b}", "ori": "{a} | {b}",
    "xor": "{a} ^ {b}", "xori": "{a} ^ {b}",
    "sll": "{a} << ({b} & 63)", "slli": "{a} << ({b} & 63)",
    "srl": "({a} & 18446744073709551615) >> ({b} & 63)",
    "srli": "({a} & 18446744073709551615) >> ({b} & 63)",
    "sra": "{a} >> ({b} & 63)", "srai": "{a} >> ({b} & 63)",
    "slt": "1 if {a} < {b} else 0", "slti": "1 if {a} < {b} else 0",
    "seq": "1 if {a} == {b} else 0",
    "min": "min({a}, {b})", "max": "max({a}, {b})",
}

_A_SLOT = {"reg": "ir[s1]", "zero": "0"}
_B_SLOT = {"imm": "imm", "reg": "ir[s2]", "zero": "0"}

_EVAL_BINDERS: dict[tuple[str, str, str], object] = {}


def _int_eval_binder(op_value: str, akind: str, bkind: str):
    """Compile (once per pattern) a binder producing a zero-argument
    evaluator closure for an integer op."""
    key = (op_value, akind, bkind)
    binder = _EVAL_BINDERS.get(key)
    if binder is None:
        expr = _INT_EXPR[op_value].format(
            a=_A_SLOT[akind], b=_B_SLOT[bkind])
        ns = {"int_div": int_div, "int_rem": int_rem,
              "min": min, "max": max}
        exec(  # noqa: S102 - static templates above, no external input
            f"def _bind(ir, s1, s2, imm):\n    return lambda: {expr}\n",
            ns,
        )
        binder = ns["_bind"]
        _EVAL_BINDERS[key] = binder
    return binder


def _fp_eval_binder(op, ir, fr, s1, s2, s3):
    """Zero-argument evaluator for an FP-class op (reads registers at
    call time, like ``Core._eval_fp``)."""
    O = Opcode
    if op is O.I2F:
        return lambda: float(ir[s1])
    if op is O.FADD:
        return lambda: fr[s1] + fr[s2]
    if op is O.FSUB:
        return lambda: fr[s1] - fr[s2]
    if op is O.FMUL:
        return lambda: fr[s1] * fr[s2]
    if op is O.FDIV:
        def ev():
            b = fr[s2]
            return fr[s1] / b if b else math.inf
        return ev
    if op is O.FSQRT:
        def ev():
            a = fr[s1]
            return math.sqrt(a) if a >= 0.0 else math.nan
        return ev
    if op is O.FNEG:
        return lambda: -fr[s1]
    if op is O.FABS:
        return lambda: abs(fr[s1])
    if op is O.FMIN:
        return lambda: min(fr[s1], fr[s2])
    if op is O.FMAX:
        return lambda: max(fr[s1], fr[s2])
    if op is O.FSEL:
        return lambda: fr[s2] if ir[s1] else fr[s3]
    if op is O.FLT:
        return lambda: 1 if fr[s1] < fr[s2] else 0
    if op is O.FLE:
        return lambda: 1 if fr[s1] <= fr[s2] else 0
    if op is O.FEQ:
        return lambda: 1 if fr[s1] == fr[s2] else 0
    if op is O.F2I:
        return lambda: wrap64(int(fr[s1]))
    raise SimulationError(f"unhandled fp op {op}")  # pragma: no cover


_BRANCH_TAKEN = {
    Opcode.BEQ: (lambda a, b: a == b),
    Opcode.BNE: (lambda a, b: a != b),
    Opcode.BLT: (lambda a, b: a < b),
    Opcode.BGE: (lambda a, b: a >= b),
    Opcode.BLE: (lambda a, b: a <= b),
    Opcode.BGT: (lambda a, b: a > b),
}


# ---------------------------------------------------------------------------
# Handler makers.  Each returns maker(ctx) -> handler(t) -> t.
# Terminator makers return maker(ctx) -> term(t) -> (t, next_block).
# ---------------------------------------------------------------------------

def _make_fetch(pc: int, line: int, conditional: bool):
    addr = pc * _INSN_BYTES
    if conditional:
        def maker(ctx):
            fa, st, sc, ihit = ctx.fa, ctx.st, ctx.sc, ctx.ihit

            def h(t):
                if sc[4] != line:
                    lat = fa(addr)
                    sc[4] = line
                    if lat > ihit:
                        st[FETCH_MISS] += lat
                        t += lat
                return t
            return h
        return maker

    def maker(ctx):
        fa, st, sc, ihit = ctx.fa, ctx.st, ctx.sc, ctx.ihit

        def h(t):
            lat = fa(addr)
            sc[4] = line
            if lat > ihit:
                st[FETCH_MISS] += lat
                t += lat
            return t
        return h
    return maker


def _make_int_alu(insn, iclass):
    op = insn.op
    rd = insn.rd
    if op is Opcode.SEL:
        s1, s2, s3 = insn.rs1, insn.rs2, insn.rs3

        def maker(ctx):
            ir, irdy, icz, st = ctx.ir, ctx.irdy, ctx.icz, ctx.st
            lat = ctx.lats[iclass]

            def h(t):
                issue = t
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = icz[s1]
                r = irdy[s2]
                if r > issue:
                    issue = r
                    c = icz[s2]
                r = irdy[s3]
                if r > issue:
                    issue = r
                    c = icz[s3]
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                if rd:
                    ir[rd] = ir[s2] if ir[s1] else ir[s3]
                    irdy[rd] = issue + lat
                    icz[rd] = None
                return issue + 1
            return h
        return maker

    srcs = int_alu_srcs(insn)
    s1, s2 = insn.rs1, insn.rs2
    imm_i = int(insn.imm) if insn.imm is not None else None
    akind = "reg" if s1 is not None else "zero"
    bkind = "imm" if imm_i is not None else (
        "reg" if s2 is not None else "zero")
    binder = _int_eval_binder(op.value, akind, bkind)

    if len(srcs) == 1:
        w1 = srcs[0]

        def maker(ctx):
            ir, irdy, icz, st = ctx.ir, ctx.irdy, ctx.icz, ctx.st
            lat = ctx.lats[iclass]
            ev = binder(ir, s1, s2, imm_i)

            def h(t):
                issue = t
                c = None
                r = irdy[w1]
                if r > issue:
                    issue = r
                    c = icz[w1]
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                v = ev()
                if rd:
                    v &= _M64
                    if v >= _H64:
                        v -= _W64
                    ir[rd] = v
                    irdy[rd] = issue + lat
                    icz[rd] = None
                return issue + 1
            return h
        return maker

    w1, w2 = srcs

    def maker(ctx):
        ir, irdy, icz, st = ctx.ir, ctx.irdy, ctx.icz, ctx.st
        lat = ctx.lats[iclass]
        ev = binder(ir, s1, s2, imm_i)

        def h(t):
            issue = t
            c = None
            r = irdy[w1]
            if r > issue:
                issue = r
                c = icz[w1]
            r = irdy[w2]
            if r > issue:
                issue = r
                c = icz[w2]
            d = issue - t
            if d > 0:
                st[DATA_HAZARD if c is None else c] += d
            v = ev()
            if rd:
                v &= _M64
                if v >= _H64:
                    v -= _W64
                ir[rd] = v
                irdy[rd] = issue + lat
                icz[rd] = None
            return issue + 1
        return h
    return maker


def _make_move(insn):
    op = insn.op
    rd = insn.rd
    if op is Opcode.LI:
        val = wrap64(int(insn.imm))

        def maker(ctx):
            ir, irdy, icz = ctx.ir, ctx.irdy, ctx.icz

            def h(t):
                if rd:
                    ir[rd] = val
                    irdy[rd] = t + 1
                    icz[rd] = None
                return t + 1
            return h
        return maker

    if op is Opcode.MOV:
        s1 = insn.rs1

        def maker(ctx):
            ir, irdy, icz, st = ctx.ir, ctx.irdy, ctx.icz, ctx.st

            def h(t):
                issue = t
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = icz[s1]
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                if rd:
                    ir[rd] = ir[s1]
                    irdy[rd] = issue + 1
                    icz[rd] = None
                return issue + 1
            return h
        return maker

    if op is Opcode.FLI:
        val = float(insn.imm)

        def maker(ctx):
            fr, frdy, fcz = ctx.fr, ctx.frdy, ctx.fcz

            def h(t):
                fr[rd] = val
                frdy[rd] = t + 1
                fcz[rd] = None
                return t + 1
            return h
        return maker

    # FMOV
    s1 = insn.rs1

    def maker(ctx):
        fr, frdy, fcz, st = ctx.fr, ctx.frdy, ctx.fcz, ctx.st

        def h(t):
            issue = t
            c = None
            r = frdy[s1]
            if r > issue:
                issue = r
                c = fcz[s1]
            d = issue - t
            if d > 0:
                st[DATA_HAZARD if c is None else c] += d
            fr[rd] = fr[s1]
            frdy[rd] = issue + 1
            fcz[rd] = None
            return issue + 1
        return h
    return maker


def _make_fp(insn, iclass):
    op = insn.op
    rd = insn.rd
    s1, s2, s3 = insn.rs1, insn.rs2, insn.rs3
    int_srcs, fp_srcs = fp_insn_srcs(insn)
    int_dest = op in FP_INT_DEST

    def maker(ctx):
        ir, fr = ctx.ir, ctx.fr
        irdy, icz = ctx.irdy, ctx.icz
        frdy, fcz = ctx.frdy, ctx.fcz
        st, sc = ctx.st, ctx.sc
        lat = ctx.lats[iclass]
        pipelined = ctx.pipelined
        ev = _fp_eval_binder(op, ir, fr, s1, s2, s3)

        def h(t):
            issue = t
            c1 = None
            for s in int_srcs:
                r = irdy[s]
                if r > issue:
                    issue = r
                    c1 = icz[s]
            c2 = None
            for s in fp_srcs:
                r = frdy[s]
                if r > issue:
                    issue = r
                    c2 = fcz[s]
            c = c2 if c2 is not None else c1
            fpu = sc[0]
            if not pipelined and fpu > issue:
                st[STRUCTURAL_FPU] += fpu - issue
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                issue = fpu
            else:
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
            ready = issue + lat
            sc[0] = ready
            v = ev()
            if int_dest:
                if rd:
                    v &= _M64
                    if v >= _H64:
                        v -= _W64
                    ir[rd] = v
                    irdy[rd] = ready
                    icz[rd] = None
            else:
                fr[rd] = float(v)
                frdy[rd] = ready
                fcz[rd] = None
            return issue + 1
        return h
    return maker


def _make_load(insn):
    rd = insn.rd
    s1 = insn.rs1
    imm_i = int(insn.imm)
    is_fp = insn.op is Opcode.FLD

    def maker(ctx):
        ir, irdy, icz = ctx.ir, ctx.irdy, ctx.icz
        fr, frdy, fcz = ctx.fr, ctx.frdy, ctx.fcz
        st, sc = ctx.st, ctx.sc
        da, dhit = ctx.da, ctx.dhit
        lw = ctx.mem.load_word

        def h(t):
            lsu = sc[1]
            issue = t if t >= lsu else lsu
            c = None
            r = irdy[s1]
            if r > issue:
                issue = r
                c = icz[s1]
            d = issue - t
            if d > 0:
                st[DATA_HAZARD if c is None else c] += d
            addr = ir[s1] + imm_i
            lat = da(addr)
            value = lw(addr)
            missed = lat > dhit
            if is_fp:
                fr[rd] = float(value)
                frdy[rd] = issue + lat
                fcz[rd] = LOAD_MISS if missed else None
            else:
                v = int(value)
                if rd:
                    v &= _M64
                    if v >= _H64:
                        v -= _W64
                    ir[rd] = v
                    irdy[rd] = issue + lat
                    icz[rd] = LOAD_MISS if missed else None
            nt = issue + 1
            sc[1] = nt
            return nt
        return h
    return maker


def _make_store(insn):
    s1, s2 = insn.rs1, insn.rs2
    imm_i = int(insn.imm)
    is_fp = insn.op is Opcode.FST

    def maker(ctx):
        ir, irdy, icz = ctx.ir, ctx.irdy, ctx.icz
        fr, frdy, fcz = ctx.fr, ctx.frdy, ctx.fcz
        st, sc = ctx.st, ctx.sc
        da = ctx.da
        sw = ctx.mem.store_word

        if is_fp:
            def h(t):
                lsu = sc[1]
                issue = t if t >= lsu else lsu
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = icz[s1]
                c2 = None
                r = frdy[s2]
                if r > issue:
                    issue = r
                    c2 = fcz[s2]
                if c2 is not None:
                    c = c2
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                addr = ir[s1] + imm_i
                da(addr, True)
                sw(addr, fr[s2])
                nt = issue + 1
                sc[1] = nt
                return nt
            return h

        def h(t):
            lsu = sc[1]
            issue = t if t >= lsu else lsu
            c = None
            r = irdy[s1]
            if r > issue:
                issue = r
                c = icz[s1]
            r = irdy[s2]
            if r > issue:
                issue = r
                c = icz[s2]
            d = issue - t
            if d > 0:
                st[DATA_HAZARD if c is None else c] += d
            addr = ir[s1] + imm_i
            da(addr, True)
            sw(addr, ir[s2])
            nt = issue + 1
            sc[1] = nt
            return nt
        return h
    return maker


def _make_nop():
    def maker(ctx):
        def h(t):
            return t + 1
        return h
    return maker


# -- DySER extension handlers ------------------------------------------------

def _no_dyser(op_value: str):
    def h(t):
        raise SimulationError(
            f"{op_value} executed on a core without DySER"
        )
    return h


def _make_dinit(insn):
    imm_i = int(insn.imm)

    def maker(ctx):
        dev = ctx.dev
        if dev is None:
            return _no_dyser(insn.op.value)
        st, sc = ctx.st, ctx.sc
        init = dev.init_config

        def h(t):
            ready = init(imm_i, t)
            d = ready - t
            if d > 0:
                st[DYSER_CONFIG] += d
            sc[2] = ready
            return ready + 1
        return h
    return maker


def _make_dsend(insn):
    port = insn.port
    s1 = insn.rs1
    is_fp = insn.op is Opcode.DFSEND

    def maker(ctx):
        dev = ctx.dev
        if dev is None:
            return _no_dyser(insn.op.value)
        regs = ctx.fr if is_fp else ctx.ir
        rdy = ctx.frdy if is_fp else ctx.irdy
        cz = ctx.fcz if is_fp else ctx.icz
        st, sc = ctx.st, ctx.sc
        send = dev.send

        def h(t):
            issue = t
            c = None
            r = rdy[s1]
            if r > issue:
                issue = r
                c = cz[s1]
            d = issue - t
            if d > 0:
                st[DATA_HAZARD if c is None else c] += d
            value = regs[s1]
            fab = sc[2]
            if fab > issue:
                st[DYSER_CONFIG] += fab - issue
                issue = fab
            done = send(port, value, issue)
            d = done - issue
            if d > 0:
                st[DYSER_SEND] += d
            return (issue if issue >= done else done) + 1
        return h
    return maker


def _make_drecv(insn):
    port = insn.port
    rd = insn.rd
    is_fp = insn.op is Opcode.DFRECV

    def maker(ctx):
        dev = ctx.dev
        if dev is None:
            return _no_dyser(insn.op.value)
        ir, irdy, icz = ctx.ir, ctx.irdy, ctx.icz
        fr, frdy, fcz = ctx.fr, ctx.frdy, ctx.fcz
        st, sc = ctx.st, ctx.sc
        recv = dev.recv

        def h(t):
            fab = sc[2]
            issue = t if t >= fab else fab
            d = issue - t
            if d > 0:
                st[DYSER_CONFIG] += d
            value, done = recv(port, issue)
            d = done - issue
            if d > 0:
                st[DYSER_RECV] += d
            if is_fp:
                fr[rd] = float(value)
                frdy[rd] = done
                fcz[rd] = DYSER_RECV
            else:
                v = int(value)
                if rd:
                    v &= _M64
                    if v >= _H64:
                        v -= _W64
                    ir[rd] = v
                    irdy[rd] = done
                    icz[rd] = DYSER_RECV
            return done + 1
        return h
    return maker


def _make_dld(insn):
    """Scalar and vector/wide DySER loads (memory -> input ports)."""
    op = insn.op
    port = insn.port
    s1 = insn.rs1
    imm_i = int(insn.imm)
    scalar = op in (Opcode.DLD, Opcode.DFLD)
    wide = op in WIDE_OPS
    is_fp = op in (Opcode.DFLD, Opcode.DFLDV, Opcode.DFLDW)

    def maker(ctx):
        dev = ctx.dev
        if dev is None:
            return _no_dyser(op.value)
        ir, irdy, icz = ctx.ir, ctx.irdy, ctx.icz
        st, sc = ctx.st, ctx.sc
        da, vca = ctx.da, ctx.vca
        mem = ctx.mem
        rate = ctx.rate

        if scalar:
            lw = mem.load_word
            send = dev.send
            cast = float if is_fp else int

            def h(t):
                lsu = sc[1]
                issue = t if t >= lsu else lsu
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = icz[s1]
                if lsu > t and issue == lsu and c is None:
                    c = LSU_BUSY
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                fab = sc[2]
                if fab > issue:
                    st[DYSER_CONFIG] += fab - issue
                    issue = fab
                addr = ir[s1] + imm_i
                lat = da(addr)
                value = cast(lw(addr))
                arrive = issue + lat
                done = send(port, value, arrive)
                d = done - arrive
                if d > 0:
                    st[DYSER_SEND] += d
                nt = issue + 1
                sc[1] = nt
                return nt
            return h

        count = imm_i
        hold = max(1, count // rate)
        lb = mem.load_block
        cast = float if is_fp else int
        if wide:
            send = dev.send

            def h(t):
                lsu = sc[1]
                issue = t if t >= lsu else lsu
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = icz[s1]
                if lsu > t and issue == lsu and c is None:
                    c = LSU_BUSY
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                fab = sc[2]
                if fab > issue:
                    st[DYSER_CONFIG] += fab - issue
                    issue = fab
                base = ir[s1]
                lat = vca(base, count, False)
                values = lb(base, count)
                t0 = issue + lat
                for i, value in enumerate(values):
                    arrive = t0 + i // rate
                    done = send(port + i, cast(value), arrive)
                    d = done - arrive
                    if d > 0:
                        st[DYSER_SEND] += d
                sc[1] = issue + hold
                return issue + 1
            return h

        send_stream = dev.send_stream

        def h(t):
            lsu = sc[1]
            issue = t if t >= lsu else lsu
            c = None
            r = irdy[s1]
            if r > issue:
                issue = r
                c = icz[s1]
            if lsu > t and issue == lsu and c is None:
                c = LSU_BUSY
            d = issue - t
            if d > 0:
                st[DATA_HAZARD if c is None else c] += d
            fab = sc[2]
            if fab > issue:
                st[DYSER_CONFIG] += fab - issue
                issue = fab
            base = ir[s1]
            lat = vca(base, count, False)
            values = lb(base, count)
            t0 = issue + lat
            stall = send_stream(
                port,
                [cast(v) for v in values],
                [t0 + i // rate for i in range(count)],
            )
            if stall:
                st[DYSER_SEND] += stall
            sc[1] = issue + hold
            return issue + 1
        return h
    return maker


def _make_dst(insn):
    """Scalar and vector/wide DySER stores (output ports -> memory)."""
    op = insn.op
    port = insn.port
    s1 = insn.rs1
    imm_i = int(insn.imm)
    scalar = op in (Opcode.DST, Opcode.DFST)
    wide = op in WIDE_OPS
    is_fp = op in (Opcode.DFST, Opcode.DFSTV, Opcode.DFSTW)
    cast = float if is_fp else int

    def maker(ctx):
        dev = ctx.dev
        if dev is None:
            return _no_dyser(op.value)
        ir, irdy, icz = ctx.ir, ctx.irdy, ctx.icz
        st, sc = ctx.st, ctx.sc
        da, vca = ctx.da, ctx.vca
        mem = ctx.mem
        rate = ctx.rate
        recv = dev.recv

        if scalar:
            sw = mem.store_word

            def h(t):
                lsu = sc[1]
                issue = t if t >= lsu else lsu
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = icz[s1]
                if lsu > t and issue == lsu and c is None:
                    c = LSU_BUSY
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                fab = sc[2]
                if fab > issue:
                    st[DYSER_CONFIG] += fab - issue
                    issue = fab
                value, done = recv(port, issue)
                addr = ir[s1] + imm_i
                da(addr, True)
                sw(addr, cast(value))
                if done > sc[3]:
                    sc[3] = done
                nt = issue + 1
                sc[1] = nt
                return nt
            return h

        count = imm_i
        hold = max(1, count // rate)
        sb = mem.store_block

        def h(t):
            lsu = sc[1]
            issue = t if t >= lsu else lsu
            c = None
            r = irdy[s1]
            if r > issue:
                issue = r
                c = icz[s1]
            if lsu > t and issue == lsu and c is None:
                c = LSU_BUSY
            d = issue - t
            if d > 0:
                st[DATA_HAZARD if c is None else c] += d
            fab = sc[2]
            if fab > issue:
                st[DYSER_CONFIG] += fab - issue
                issue = fab
            base = ir[s1]
            done = issue
            values = []
            append = values.append
            for i in range(count):
                value, done = recv(port + i if wide else port, done)
                append(value)
            vca(base, count, True)
            sb(base, [cast(v) for v in values])
            if done > sc[3]:
                sc[3] = done
            sc[1] = issue + hold
            return issue + 1
        return h
    return maker


# -- terminators -------------------------------------------------------------

def _make_branch(insn, tbi: int, fbi: int):
    s1, s2 = insn.rs1, insn.rs2
    cmp = _BRANCH_TAKEN[insn.op]

    def maker(ctx):
        ir, irdy, icz, st = ctx.ir, ctx.irdy, ctx.icz, ctx.st
        misc = ctx.misc
        penalty = ctx.penalty

        def term(t):
            issue = t
            c = None
            r = irdy[s1]
            if r > issue:
                issue = r
                c = icz[s1]
            r = irdy[s2]
            if r > issue:
                issue = r
                c = icz[s2]
            d = issue - t
            if d > 0:
                st[DATA_HAZARD if c is None else c] += d
            if cmp(ir[s1], ir[s2]):
                misc[0] += 1
                if penalty > 0:
                    st[BRANCH] += penalty
                return issue + 1 + penalty, tbi
            return issue + 1, fbi
        return term
    return maker


def _make_jump(tbi: int):
    def maker(ctx):
        st, misc = ctx.st, ctx.misc
        penalty = ctx.penalty

        def term(t):
            misc[0] += 1
            if penalty > 0:
                st[BRANCH] += penalty
            return t + 1 + penalty, tbi
        return term
    return maker


def _make_halt():
    def maker(ctx):
        sc = ctx.sc

        def term(t):
            q = sc[3]
            return (t if t >= q else q) + 1, -1
        return term
    return maker


def _make_fall(fbi: int):
    def maker(ctx):
        def term(t):
            return t, fbi
        return term
    return maker


def _make_exec(insn):
    iclass = insn.info.iclass
    C = InsnClass
    if iclass in (C.ALU, C.MUL, C.DIV):
        return _make_int_alu(insn, iclass)
    if iclass is C.MOVE:
        return _make_move(insn)
    if iclass in (C.FPU, C.FDIV):
        return _make_fp(insn, iclass)
    if iclass is C.LOAD:
        return _make_load(insn)
    if iclass is C.STORE:
        return _make_store(insn)
    if iclass is C.DYSER_INIT:
        return _make_dinit(insn)
    if iclass is C.DYSER_SEND:
        return _make_dsend(insn)
    if iclass is C.DYSER_RECV:
        return _make_drecv(insn)
    if iclass is C.DYSER_LOAD:
        return _make_dld(insn)
    if iclass is C.DYSER_STORE:
        return _make_dst(insn)
    if insn.op is Opcode.NOP:
        return _make_nop()
    raise SimulationError(f"unhandled opcode {insn.op}")


# ---------------------------------------------------------------------------
# Basic-block construction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DecodedBlock:
    """One basic block as a static handler template.

    ``makers`` covers every non-terminating instruction (fetch handlers
    interleaved in front of their instruction); the block's control
    transfer lives in ``term_maker``.  ``starts[k]`` is the offset of
    instruction *k*'s first handler, used by the fast core's
    instruction-limit slow path.  ``mix`` is the per-class instruction
    histogram, folded into :class:`~repro.cpu.statistics.ExecStats`
    once per block execution rather than once per instruction.
    """

    start: int
    length: int
    makers: tuple
    term_maker: object
    starts: tuple[int, ...]
    mix: tuple


@dataclass(frozen=True)
class DecodedProgram:
    """All basic blocks of one program (entry is ``blocks[0]``)."""

    blocks: tuple[DecodedBlock, ...]
    n: int
    name: str
    insns_per_line: int

    def bind(self, ctx) -> list:
        """Bind every maker to ``ctx``; returns per-block
        ``(handlers, term, length, starts)`` tuples."""
        return [
            (
                tuple(m(ctx) for m in b.makers),
                b.term_maker(ctx),
                b.length,
                b.starts,
            )
            for b in self.blocks
        ]


def _build(program: Program, insns_per_line: int) -> DecodedProgram:
    insns = program.instructions
    n = len(insns)
    control = (InsnClass.BRANCH, InsnClass.JUMP)
    leaders = {0}
    for i, insn in enumerate(insns):
        iclass = insn.info.iclass
        if iclass in control:
            if insn.target_index is not None and insn.target_index < n:
                leaders.add(insn.target_index)
            leaders.add(i + 1)
        elif insn.op is Opcode.HALT:
            leaders.add(i + 1)
    ordered = sorted(x for x in leaders if x < n)
    block_of = {pc: bi for bi, pc in enumerate(ordered)}
    bounds = ordered + [n]

    blocks = []
    for bi, start in enumerate(ordered):
        end = bounds[bi + 1]
        makers: list = []
        starts: list[int] = []
        mix: Counter = Counter()
        term_maker = None
        for pc in range(start, end):
            insn = insns[pc]
            starts.append(len(makers))
            mix[insn.info.iclass] += 1
            line = pc // insns_per_line
            if pc == start:
                makers.append(_make_fetch(pc, line, conditional=True))
            elif pc % insns_per_line == 0:
                makers.append(_make_fetch(pc, line, conditional=False))
            iclass = insn.info.iclass
            if iclass is InsnClass.BRANCH:
                ti = insn.target_index
                tbi = block_of[ti] if ti < n else -2
                fbi = block_of.get(pc + 1, -2)
                term_maker = _make_branch(insn, tbi, fbi)
            elif iclass is InsnClass.JUMP:
                ti = insn.target_index
                term_maker = _make_jump(block_of[ti] if ti < n else -2)
            elif insn.op is Opcode.HALT:
                term_maker = _make_halt()
            else:
                makers.append(_make_exec(insn))
        if term_maker is None:
            term_maker = _make_fall(block_of.get(end, -2))
        blocks.append(DecodedBlock(
            start=start,
            length=end - start,
            makers=tuple(makers),
            term_maker=term_maker,
            starts=tuple(starts),
            mix=tuple(mix.items()),
        ))
    return DecodedProgram(
        blocks=tuple(blocks), n=n, name=program.name,
        insns_per_line=insns_per_line,
    )


# ---------------------------------------------------------------------------
# Decode cache
# ---------------------------------------------------------------------------

# Program is a mutable (unhashable) dataclass, so the cache is keyed by
# identity and guarded by a weak reference: a dead or recycled id() can
# never serve a stale entry, and finalizers evict on collection.
_DECODE_CACHE: dict[tuple[int, int], tuple] = {}


def decode_program(program: Program,
                   insns_per_line: int | None = None) -> DecodedProgram:
    """Decode ``program`` (cached by identity and I$ line geometry).

    ``insns_per_line`` defaults to the stock I$ line geometry
    (:func:`repro.cpu.cache.icache_config`), matching a default
    :class:`~repro.cpu.core.CoreConfig`.
    """
    if insns_per_line is None:
        from repro.cpu.cache import icache_config

        insns_per_line = max(1,
                             icache_config().line_bytes // _INSN_BYTES)
    key = (id(program), insns_per_line)
    entry = _DECODE_CACHE.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    if not program.is_linked:
        program.link()
    program.validate()
    decoded = _build(program, insns_per_line)
    _DECODE_CACHE[key] = (weakref.ref(program), decoded)
    weakref.finalize(program, _DECODE_CACHE.pop, key, None)
    return decoded


def decode_cache_size() -> int:
    """Number of live decoded programs (for tests and cache stats)."""
    return len(_DECODE_CACHE)


def clear_decode_caches() -> None:
    """Drop all decoded programs and compiled evaluator patterns."""
    _DECODE_CACHE.clear()
    _EVAL_BINDERS.clear()
