"""Integer and floating-point register files.

The integer file follows the SPARC convention that register 0 reads as
zero and ignores writes (%g0).  Values are stored as Python numbers; the
integer file coerces to ``int`` and wraps to 64-bit two's complement so
shift/compare semantics match hardware.
"""

from __future__ import annotations

from repro.isa.instruction import NUM_FP_REGS, NUM_INT_REGS, ZERO_REG

_MASK64 = (1 << 64) - 1


def wrap64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class IntRegFile:
    """32 integer registers; r0 is hard-wired to zero."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs = [0] * NUM_INT_REGS

    def read(self, index: int) -> int:
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if index != ZERO_REG:
            self._regs[index] = wrap64(int(value))

    def snapshot(self) -> list[int]:
        return list(self._regs)


class FpRegFile:
    """32 double-precision registers."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs = [0.0] * NUM_FP_REGS

    def read(self, index: int) -> float:
        return self._regs[index]

    def write(self, index: int, value: float) -> None:
        self._regs[index] = float(value)

    def snapshot(self) -> list[float]:
        return list(self._regs)
