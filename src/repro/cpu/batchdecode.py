"""Batched predecode: one program -> lockstep handler chains over N points.

This is the static half of the batched backend (:mod:`repro.cpu.
batchcore`).  It mirrors :mod:`repro.cpu.decode` block for block, but
every handler is specialized for *lockstep* execution over a vector of
sweep points that share one functional execution:

- **Functional work happens once per batch.**  Register values, memory
  traffic, cache latencies, branch outcomes and DySER operand values are
  identical across points whose configs differ only in timing knobs
  (FIFO depths, initiation interval, config-cache capacity, vector port
  rate, instruction limits) — timing cannot change a value in this
  machine, so the evaluator, the memory image and the cache hierarchy
  are shared and touched exactly once per dynamic instruction.
- **Timing work happens per point.**  Scoreboards (register ready
  cycles + stall-cause attribution), structural units (FPU/LSU/fabric/
  store-queue), the per-point cycle cursor and the per-point DySER
  device all live in structure-of-arrays form on the batch context; a
  handler's inner loop walks ``ctx.ap`` (the active point list) and
  replays exactly the reference core's issue rules for each point.

The cycle-exactness contract is inherited from :mod:`repro.cpu.decode`:
for every point, the observable result must be byte-identical to a solo
run on the fast (and therefore reference) backend.  The batched parity
gate in :mod:`repro.harness.batch` and the ``batched`` fuzz oracle
enforce that, including identical stable error strings on faults.

Handler signature: ``maker(ctx) -> handler()`` mutating ``ctx.tv`` (the
per-point cycle cursors) in place.  Terminator makers return
``term() -> next_block_index`` — control flow is *shared* across the
batch by construction, which is why no handler ever needs a per-point
branch target.  Divergence therefore only ever means "a point faults"
(e.g. a per-point instruction limit), and that is handled by the batch
core splitting the point out of the lockstep loop, never here.
"""

from __future__ import annotations

import weakref
from collections import Counter
from dataclasses import dataclass

from repro.cpu.decode import (
    _INSN_BYTES,
    _BRANCH_TAKEN,
    _H64,
    _M64,
    _W64,
    BRANCH,
    DATA_HAZARD,
    DYSER_CONFIG,
    DYSER_RECV,
    DYSER_SEND,
    FETCH_MISS,
    FP_INT_DEST,
    LOAD_MISS,
    LSU_BUSY,
    STRUCTURAL_FPU,
    _fp_eval_binder,
    _int_eval_binder,
    fp_insn_srcs,
    int_alu_srcs,
)
from repro.errors import SimulationError
from repro.cpu.regfile import wrap64
from repro.isa.opcodes import InsnClass, Opcode, WIDE_OPS
from repro.isa.program import Program


# ---------------------------------------------------------------------------
# Handler makers.  maker(ctx) -> handler(); handlers mutate ctx.tv.
# ---------------------------------------------------------------------------

def _make_fetch(pc: int, line: int, conditional: bool):
    addr = pc * _INSN_BYTES
    if conditional:
        def maker(ctx):
            fa, fl, ihit = ctx.fa, ctx.fl, ctx.ihit
            sts, tv, ap = ctx.sts, ctx.tv, ctx.ap

            def h():
                if fl[0] != line:
                    lat = fa(addr)
                    fl[0] = line
                    if lat > ihit:
                        for p in ap:
                            sts[p][FETCH_MISS] += lat
                            tv[p] += lat
            return h
        return maker

    def maker(ctx):
        fa, fl, ihit = ctx.fa, ctx.fl, ctx.ihit
        sts, tv, ap = ctx.sts, ctx.tv, ctx.ap

        def h():
            lat = fa(addr)
            fl[0] = line
            if lat > ihit:
                for p in ap:
                    sts[p][FETCH_MISS] += lat
                    tv[p] += lat
        return h
    return maker


def _make_int_alu(insn, iclass):
    op = insn.op
    rd = insn.rd
    if op is Opcode.SEL:
        s1, s2, s3 = insn.rs1, insn.rs2, insn.rs3

        def maker(ctx):
            ir = ctx.ir
            irdys, iczs, sts = ctx.irdys, ctx.iczs, ctx.sts
            tv, ap = ctx.tv, ctx.ap
            lat = ctx.lats[iclass]

            def h():
                for p in ap:
                    irdy = irdys[p]
                    icz = iczs[p]
                    t = tv[p]
                    issue = t
                    c = None
                    r = irdy[s1]
                    if r > issue:
                        issue = r
                        c = icz[s1]
                    r = irdy[s2]
                    if r > issue:
                        issue = r
                        c = icz[s2]
                    r = irdy[s3]
                    if r > issue:
                        issue = r
                        c = icz[s3]
                    d = issue - t
                    if d > 0:
                        sts[p][DATA_HAZARD if c is None else c] += d
                    if rd:
                        irdy[rd] = issue + lat
                        icz[rd] = None
                    tv[p] = issue + 1
                if rd:
                    ir[rd] = ir[s2] if ir[s1] else ir[s3]
            return h
        return maker

    srcs = int_alu_srcs(insn)
    s1, s2 = insn.rs1, insn.rs2
    imm_i = int(insn.imm) if insn.imm is not None else None
    akind = "reg" if s1 is not None else "zero"
    bkind = "imm" if imm_i is not None else (
        "reg" if s2 is not None else "zero")
    binder = _int_eval_binder(op.value, akind, bkind)

    if len(srcs) == 1:
        w1 = srcs[0]

        def maker(ctx):
            ir = ctx.ir
            irdys, iczs, sts = ctx.irdys, ctx.iczs, ctx.sts
            tv, ap = ctx.tv, ctx.ap
            lat = ctx.lats[iclass]
            ev = binder(ir, s1, s2, imm_i)

            def h():
                for p in ap:
                    irdy = irdys[p]
                    t = tv[p]
                    issue = t
                    c = None
                    r = irdy[w1]
                    if r > issue:
                        issue = r
                        c = iczs[p][w1]
                    d = issue - t
                    if d > 0:
                        sts[p][DATA_HAZARD if c is None else c] += d
                    if rd:
                        irdy[rd] = issue + lat
                        iczs[p][rd] = None
                    tv[p] = issue + 1
                v = ev()
                if rd:
                    v &= _M64
                    if v >= _H64:
                        v -= _W64
                    ir[rd] = v
            return h
        return maker

    w1, w2 = srcs

    def maker(ctx):
        ir = ctx.ir
        irdys, iczs, sts = ctx.irdys, ctx.iczs, ctx.sts
        tv, ap = ctx.tv, ctx.ap
        lat = ctx.lats[iclass]
        ev = binder(ir, s1, s2, imm_i)

        def h():
            for p in ap:
                irdy = irdys[p]
                icz = iczs[p]
                t = tv[p]
                issue = t
                c = None
                r = irdy[w1]
                if r > issue:
                    issue = r
                    c = icz[w1]
                r = irdy[w2]
                if r > issue:
                    issue = r
                    c = icz[w2]
                d = issue - t
                if d > 0:
                    sts[p][DATA_HAZARD if c is None else c] += d
                if rd:
                    irdy[rd] = issue + lat
                    icz[rd] = None
                tv[p] = issue + 1
            v = ev()
            if rd:
                v &= _M64
                if v >= _H64:
                    v -= _W64
                ir[rd] = v
        return h
    return maker


def _make_move(insn):
    op = insn.op
    rd = insn.rd
    if op is Opcode.LI:
        val = wrap64(int(insn.imm))

        def maker(ctx):
            ir = ctx.ir
            irdys, iczs = ctx.irdys, ctx.iczs
            tv, ap = ctx.tv, ctx.ap

            def h():
                for p in ap:
                    t = tv[p] + 1
                    if rd:
                        irdys[p][rd] = t
                        iczs[p][rd] = None
                    tv[p] = t
                if rd:
                    ir[rd] = val
            return h
        return maker

    if op is Opcode.MOV:
        s1 = insn.rs1

        def maker(ctx):
            ir = ctx.ir
            irdys, iczs, sts = ctx.irdys, ctx.iczs, ctx.sts
            tv, ap = ctx.tv, ctx.ap

            def h():
                for p in ap:
                    irdy = irdys[p]
                    t = tv[p]
                    issue = t
                    c = None
                    r = irdy[s1]
                    if r > issue:
                        issue = r
                        c = iczs[p][s1]
                    d = issue - t
                    if d > 0:
                        sts[p][DATA_HAZARD if c is None else c] += d
                    if rd:
                        irdy[rd] = issue + 1
                        iczs[p][rd] = None
                    tv[p] = issue + 1
                if rd:
                    ir[rd] = ir[s1]
            return h
        return maker

    if op is Opcode.FLI:
        val = float(insn.imm)

        def maker(ctx):
            fr = ctx.fr
            frdys, fczs = ctx.frdys, ctx.fczs
            tv, ap = ctx.tv, ctx.ap

            def h():
                for p in ap:
                    t = tv[p] + 1
                    frdys[p][rd] = t
                    fczs[p][rd] = None
                    tv[p] = t
                fr[rd] = val
            return h
        return maker

    # FMOV
    s1 = insn.rs1

    def maker(ctx):
        fr = ctx.fr
        frdys, fczs, sts = ctx.frdys, ctx.fczs, ctx.sts
        tv, ap = ctx.tv, ctx.ap

        def h():
            for p in ap:
                frdy = frdys[p]
                t = tv[p]
                issue = t
                c = None
                r = frdy[s1]
                if r > issue:
                    issue = r
                    c = fczs[p][s1]
                d = issue - t
                if d > 0:
                    sts[p][DATA_HAZARD if c is None else c] += d
                frdy[rd] = issue + 1
                fczs[p][rd] = None
                tv[p] = issue + 1
            fr[rd] = fr[s1]
        return h
    return maker


def _make_fp(insn, iclass):
    op = insn.op
    rd = insn.rd
    s1, s2, s3 = insn.rs1, insn.rs2, insn.rs3
    int_srcs, fp_srcs = fp_insn_srcs(insn)
    int_dest = op in FP_INT_DEST

    def maker(ctx):
        ir, fr = ctx.ir, ctx.fr
        irdys, iczs = ctx.irdys, ctx.iczs
        frdys, fczs = ctx.frdys, ctx.fczs
        sts, scs = ctx.sts, ctx.scs
        tv, ap = ctx.tv, ctx.ap
        lat = ctx.lats[iclass]
        pipelined = ctx.pipelined
        ev = _fp_eval_binder(op, ir, fr, s1, s2, s3)

        def h():
            v = ev()
            if int_dest:
                if rd:
                    w = v & _M64
                    if w >= _H64:
                        w -= _W64
                    ir[rd] = w
            else:
                fr[rd] = float(v)
            for p in ap:
                irdy = irdys[p]
                frdy = frdys[p]
                st = sts[p]
                sc = scs[p]
                t = tv[p]
                issue = t
                c1 = None
                for s in int_srcs:
                    r = irdy[s]
                    if r > issue:
                        issue = r
                        c1 = iczs[p][s]
                c2 = None
                for s in fp_srcs:
                    r = frdy[s]
                    if r > issue:
                        issue = r
                        c2 = fczs[p][s]
                c = c2 if c2 is not None else c1
                fpu = sc[0]
                if not pipelined and fpu > issue:
                    st[STRUCTURAL_FPU] += fpu - issue
                    d = issue - t
                    if d > 0:
                        st[DATA_HAZARD if c is None else c] += d
                    issue = fpu
                else:
                    d = issue - t
                    if d > 0:
                        st[DATA_HAZARD if c is None else c] += d
                ready = issue + lat
                sc[0] = ready
                if int_dest:
                    if rd:
                        irdy[rd] = ready
                        iczs[p][rd] = None
                else:
                    frdy[rd] = ready
                    fczs[p][rd] = None
                tv[p] = issue + 1
        return h
    return maker


def _make_load(insn):
    rd = insn.rd
    s1 = insn.rs1
    imm_i = int(insn.imm)
    is_fp = insn.op is Opcode.FLD

    def maker(ctx):
        ir = ctx.ir
        fr = ctx.fr
        irdys, iczs = ctx.irdys, ctx.iczs
        frdys, fczs = ctx.frdys, ctx.fczs
        sts, scs = ctx.sts, ctx.scs
        tv, ap = ctx.tv, ctx.ap
        da, dhit = ctx.da, ctx.dhit
        lw = ctx.mem.load_word

        def h():
            addr = ir[s1] + imm_i
            lat = da(addr)
            value = lw(addr)
            missed = lat > dhit
            mcz = LOAD_MISS if missed else None
            if is_fp:
                fr[rd] = float(value)
            else:
                v = int(value)
                if rd:
                    v &= _M64
                    if v >= _H64:
                        v -= _W64
                    ir[rd] = v
            for p in ap:
                irdy = irdys[p]
                sc = scs[p]
                t = tv[p]
                lsu = sc[1]
                issue = t if t >= lsu else lsu
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = iczs[p][s1]
                d = issue - t
                if d > 0:
                    sts[p][DATA_HAZARD if c is None else c] += d
                if is_fp:
                    frdys[p][rd] = issue + lat
                    fczs[p][rd] = mcz
                elif rd:
                    irdy[rd] = issue + lat
                    iczs[p][rd] = mcz
                nt = issue + 1
                sc[1] = nt
                tv[p] = nt
        return h
    return maker


def _make_store(insn):
    s1, s2 = insn.rs1, insn.rs2
    imm_i = int(insn.imm)
    is_fp = insn.op is Opcode.FST

    def maker(ctx):
        ir, fr = ctx.ir, ctx.fr
        irdys, iczs = ctx.irdys, ctx.iczs
        frdys, fczs = ctx.frdys, ctx.fczs
        sts, scs = ctx.sts, ctx.scs
        tv, ap = ctx.tv, ctx.ap
        da = ctx.da
        sw = ctx.mem.store_word

        if is_fp:
            def h():
                addr = ir[s1] + imm_i
                da(addr, True)
                sw(addr, fr[s2])
                for p in ap:
                    irdy = irdys[p]
                    sc = scs[p]
                    t = tv[p]
                    lsu = sc[1]
                    issue = t if t >= lsu else lsu
                    c = None
                    r = irdy[s1]
                    if r > issue:
                        issue = r
                        c = iczs[p][s1]
                    c2 = None
                    r = frdys[p][s2]
                    if r > issue:
                        issue = r
                        c2 = fczs[p][s2]
                    if c2 is not None:
                        c = c2
                    d = issue - t
                    if d > 0:
                        sts[p][DATA_HAZARD if c is None else c] += d
                    nt = issue + 1
                    sc[1] = nt
                    tv[p] = nt
            return h

        def h():
            addr = ir[s1] + imm_i
            da(addr, True)
            sw(addr, ir[s2])
            for p in ap:
                irdy = irdys[p]
                icz = iczs[p]
                sc = scs[p]
                t = tv[p]
                lsu = sc[1]
                issue = t if t >= lsu else lsu
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = icz[s1]
                r = irdy[s2]
                if r > issue:
                    issue = r
                    c = icz[s2]
                d = issue - t
                if d > 0:
                    sts[p][DATA_HAZARD if c is None else c] += d
                nt = issue + 1
                sc[1] = nt
                tv[p] = nt
        return h
    return maker


def _make_nop():
    def maker(ctx):
        tv, ap = ctx.tv, ctx.ap

        def h():
            for p in ap:
                tv[p] += 1
        return h
    return maker


# -- DySER extension handlers ------------------------------------------------

def _no_dyser(op_value: str):
    def h():
        raise SimulationError(
            f"{op_value} executed on a core without DySER"
        )
    return h


def _make_dinit(insn):
    imm_i = int(insn.imm)

    def maker(ctx):
        devs = ctx.devs
        if devs[0] is None:
            return _no_dyser(insn.op.value)
        sts, scs = ctx.sts, ctx.scs
        tv, ap = ctx.tv, ctx.ap

        def h():
            for p in ap:
                t = tv[p]
                ready = devs[p].init_config(imm_i, t)
                d = ready - t
                if d > 0:
                    sts[p][DYSER_CONFIG] += d
                scs[p][2] = ready
                tv[p] = ready + 1
        return h
    return maker


def _make_dsend(insn):
    port = insn.port
    s1 = insn.rs1
    is_fp = insn.op is Opcode.DFSEND

    def maker(ctx):
        devs = ctx.devs
        if devs[0] is None:
            return _no_dyser(insn.op.value)
        regs = ctx.fr if is_fp else ctx.ir
        rdys = ctx.frdys if is_fp else ctx.irdys
        czs = ctx.fczs if is_fp else ctx.iczs
        sts, scs = ctx.sts, ctx.scs
        tv, ap = ctx.tv, ctx.ap

        def h():
            value = regs[s1]
            for p in ap:
                st = sts[p]
                t = tv[p]
                issue = t
                c = None
                r = rdys[p][s1]
                if r > issue:
                    issue = r
                    c = czs[p][s1]
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                fab = scs[p][2]
                if fab > issue:
                    st[DYSER_CONFIG] += fab - issue
                    issue = fab
                done = devs[p].send(port, value, issue)
                d = done - issue
                if d > 0:
                    st[DYSER_SEND] += d
                tv[p] = (issue if issue >= done else done) + 1
        return h
    return maker


def _make_drecv(insn):
    port = insn.port
    rd = insn.rd
    is_fp = insn.op is Opcode.DFRECV

    def maker(ctx):
        devs = ctx.devs
        if devs[0] is None:
            return _no_dyser(insn.op.value)
        ir, fr = ctx.ir, ctx.fr
        irdys, iczs = ctx.irdys, ctx.iczs
        frdys, fczs = ctx.frdys, ctx.fczs
        sts, scs = ctx.sts, ctx.scs
        tv, ap = ctx.tv, ctx.ap

        def h():
            value = None
            for p in ap:
                st = sts[p]
                t = tv[p]
                fab = scs[p][2]
                issue = t if t >= fab else fab
                d = issue - t
                if d > 0:
                    st[DYSER_CONFIG] += d
                value, done = devs[p].recv(port, issue)
                d = done - issue
                if d > 0:
                    st[DYSER_RECV] += d
                if is_fp:
                    frdys[p][rd] = done
                    fczs[p][rd] = DYSER_RECV
                elif rd:
                    irdys[p][rd] = done
                    iczs[p][rd] = DYSER_RECV
                tv[p] = done + 1
            # The received value is config-independent (same functional
            # stream per point); retire it into the shared registers.
            if is_fp:
                fr[rd] = float(value)
            else:
                v = int(value)
                if rd:
                    v &= _M64
                    if v >= _H64:
                        v -= _W64
                    ir[rd] = v
        return h
    return maker


def _make_dld(insn):
    """Scalar and vector/wide DySER loads (memory -> input ports)."""
    op = insn.op
    port = insn.port
    s1 = insn.rs1
    imm_i = int(insn.imm)
    scalar = op in (Opcode.DLD, Opcode.DFLD)
    wide = op in WIDE_OPS
    is_fp = op in (Opcode.DFLD, Opcode.DFLDV, Opcode.DFLDW)

    def maker(ctx):
        devs = ctx.devs
        if devs[0] is None:
            return _no_dyser(op.value)
        ir = ctx.ir
        irdys, iczs = ctx.irdys, ctx.iczs
        sts, scs = ctx.sts, ctx.scs
        tv, ap = ctx.tv, ctx.ap
        da, vca = ctx.da, ctx.vca
        mem = ctx.mem
        rates = ctx.rates
        cast = float if is_fp else int

        if scalar:
            lw = mem.load_word

            def h():
                addr = ir[s1] + imm_i
                lat = da(addr)
                value = cast(lw(addr))
                for p in ap:
                    irdy = irdys[p]
                    st = sts[p]
                    sc = scs[p]
                    t = tv[p]
                    lsu = sc[1]
                    issue = t if t >= lsu else lsu
                    c = None
                    r = irdy[s1]
                    if r > issue:
                        issue = r
                        c = iczs[p][s1]
                    if lsu > t and issue == lsu and c is None:
                        c = LSU_BUSY
                    d = issue - t
                    if d > 0:
                        st[DATA_HAZARD if c is None else c] += d
                    fab = sc[2]
                    if fab > issue:
                        st[DYSER_CONFIG] += fab - issue
                        issue = fab
                    arrive = issue + lat
                    done = devs[p].send(port, value, arrive)
                    d = done - arrive
                    if d > 0:
                        st[DYSER_SEND] += d
                    nt = issue + 1
                    sc[1] = nt
                    tv[p] = nt
            return h

        count = imm_i
        lb = mem.load_block
        holds = [max(1, count // r) for r in rates]
        if wide:
            # Per-point arrival offsets (i // rate) are data-independent;
            # compute them once so the hot loop only adds t0.
            offsets = [[i // r for i in range(count)] for r in rates]

            def h():
                base = ir[s1]
                lat = vca(base, count, False)
                vals = [cast(v) for v in lb(base, count)]
                for p in ap:
                    irdy = irdys[p]
                    st = sts[p]
                    sc = scs[p]
                    t = tv[p]
                    lsu = sc[1]
                    issue = t if t >= lsu else lsu
                    c = None
                    r = irdy[s1]
                    if r > issue:
                        issue = r
                        c = iczs[p][s1]
                    if lsu > t and issue == lsu and c is None:
                        c = LSU_BUSY
                    d = issue - t
                    if d > 0:
                        st[DATA_HAZARD if c is None else c] += d
                    fab = sc[2]
                    if fab > issue:
                        st[DYSER_CONFIG] += fab - issue
                        issue = fab
                    t0 = issue + lat
                    stall = devs[p].send_wide(
                        port, vals, [t0 + o for o in offsets[p]])
                    if stall:
                        st[DYSER_SEND] += stall
                    sc[1] = issue + holds[p]
                    tv[p] = issue + 1
            return h

        def h():
            base = ir[s1]
            lat = vca(base, count, False)
            vals = [cast(v) for v in lb(base, count)]
            for p in ap:
                irdy = irdys[p]
                st = sts[p]
                sc = scs[p]
                rate = rates[p]
                t = tv[p]
                lsu = sc[1]
                issue = t if t >= lsu else lsu
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = iczs[p][s1]
                if lsu > t and issue == lsu and c is None:
                    c = LSU_BUSY
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                fab = sc[2]
                if fab > issue:
                    st[DYSER_CONFIG] += fab - issue
                    issue = fab
                t0 = issue + lat
                stall = devs[p].send_stream(
                    port, vals,
                    [t0 + i // rate for i in range(count)],
                )
                if stall:
                    st[DYSER_SEND] += stall
                sc[1] = issue + holds[p]
                tv[p] = issue + 1
        return h
    return maker


def _make_dst(insn):
    """Scalar and vector/wide DySER stores (output ports -> memory)."""
    op = insn.op
    port = insn.port
    s1 = insn.rs1
    imm_i = int(insn.imm)
    scalar = op in (Opcode.DST, Opcode.DFST)
    wide = op in WIDE_OPS
    is_fp = op in (Opcode.DFST, Opcode.DFSTV, Opcode.DFSTW)
    cast = float if is_fp else int

    def maker(ctx):
        devs = ctx.devs
        if devs[0] is None:
            return _no_dyser(op.value)
        ir = ctx.ir
        irdys, iczs = ctx.irdys, ctx.iczs
        sts, scs = ctx.sts, ctx.scs
        tv, ap = ctx.tv, ctx.ap
        da, vca = ctx.da, ctx.vca
        mem = ctx.mem
        rates = ctx.rates

        if scalar:
            sw = mem.store_word

            def h():
                value = None
                for p in ap:
                    irdy = irdys[p]
                    st = sts[p]
                    sc = scs[p]
                    t = tv[p]
                    lsu = sc[1]
                    issue = t if t >= lsu else lsu
                    c = None
                    r = irdy[s1]
                    if r > issue:
                        issue = r
                        c = iczs[p][s1]
                    if lsu > t and issue == lsu and c is None:
                        c = LSU_BUSY
                    d = issue - t
                    if d > 0:
                        st[DATA_HAZARD if c is None else c] += d
                    fab = sc[2]
                    if fab > issue:
                        st[DYSER_CONFIG] += fab - issue
                        issue = fab
                    value, done = devs[p].recv(port, issue)
                    if done > sc[3]:
                        sc[3] = done
                    nt = issue + 1
                    sc[1] = nt
                    tv[p] = nt
                # Store once: the value stream is point-independent.
                addr = ir[s1] + imm_i
                da(addr, True)
                sw(addr, cast(value))
            return h

        count = imm_i
        sb = mem.store_block
        holds = [max(1, count // r) for r in rates]

        def h():
            values = None
            base = ir[s1]
            for p in ap:
                irdy = irdys[p]
                st = sts[p]
                sc = scs[p]
                recv = devs[p].recv
                t = tv[p]
                lsu = sc[1]
                issue = t if t >= lsu else lsu
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = iczs[p][s1]
                if lsu > t and issue == lsu and c is None:
                    c = LSU_BUSY
                d = issue - t
                if d > 0:
                    st[DATA_HAZARD if c is None else c] += d
                fab = sc[2]
                if fab > issue:
                    st[DYSER_CONFIG] += fab - issue
                    issue = fab
                done = issue
                values = []
                append = values.append
                for i in range(count):
                    value, done = recv(port + i if wide else port, done)
                    append(value)
                if done > sc[3]:
                    sc[3] = done
                sc[1] = issue + holds[p]
                tv[p] = issue + 1
            vca(base, count, True)
            sb(base, [cast(v) for v in values])
        return h
    return maker


# -- terminators -------------------------------------------------------------

def _make_branch(insn, tbi: int, fbi: int):
    s1, s2 = insn.rs1, insn.rs2
    cmp = _BRANCH_TAKEN[insn.op]

    def maker(ctx):
        ir = ctx.ir
        irdys, iczs, sts = ctx.irdys, ctx.iczs, ctx.sts
        tv, ap = ctx.tv, ctx.ap
        misc = ctx.misc
        penalty = ctx.penalty

        def term():
            taken = cmp(ir[s1], ir[s2])
            for p in ap:
                irdy = irdys[p]
                icz = iczs[p]
                t = tv[p]
                issue = t
                c = None
                r = irdy[s1]
                if r > issue:
                    issue = r
                    c = icz[s1]
                r = irdy[s2]
                if r > issue:
                    issue = r
                    c = icz[s2]
                d = issue - t
                if d > 0:
                    sts[p][DATA_HAZARD if c is None else c] += d
                if taken:
                    if penalty > 0:
                        sts[p][BRANCH] += penalty
                    tv[p] = issue + 1 + penalty
                else:
                    tv[p] = issue + 1
            if taken:
                misc[0] += 1
                return tbi
            return fbi
        return term
    return maker


def _make_jump(tbi: int):
    def maker(ctx):
        sts, misc = ctx.sts, ctx.misc
        tv, ap = ctx.tv, ctx.ap
        penalty = ctx.penalty

        def term():
            misc[0] += 1
            for p in ap:
                if penalty > 0:
                    sts[p][BRANCH] += penalty
                tv[p] += 1 + penalty
            return tbi
        return term
    return maker


def _make_halt():
    def maker(ctx):
        scs = ctx.scs
        tv, ap = ctx.tv, ctx.ap

        def term():
            for p in ap:
                t = tv[p]
                q = scs[p][3]
                tv[p] = (t if t >= q else q) + 1
            return -1
        return term
    return maker


def _make_fall(fbi: int):
    def maker(ctx):
        def term():
            return fbi
        return term
    return maker


def _make_exec(insn):
    iclass = insn.info.iclass
    C = InsnClass
    if iclass in (C.ALU, C.MUL, C.DIV):
        return _make_int_alu(insn, iclass)
    if iclass is C.MOVE:
        return _make_move(insn)
    if iclass in (C.FPU, C.FDIV):
        return _make_fp(insn, iclass)
    if iclass is C.LOAD:
        return _make_load(insn)
    if iclass is C.STORE:
        return _make_store(insn)
    if iclass is C.DYSER_INIT:
        return _make_dinit(insn)
    if iclass is C.DYSER_SEND:
        return _make_dsend(insn)
    if iclass is C.DYSER_RECV:
        return _make_drecv(insn)
    if iclass is C.DYSER_LOAD:
        return _make_dld(insn)
    if iclass is C.DYSER_STORE:
        return _make_dst(insn)
    if insn.op is Opcode.NOP:
        return _make_nop()
    raise SimulationError(f"unhandled opcode {insn.op}")


# ---------------------------------------------------------------------------
# Basic-block construction (same block discovery as repro.cpu.decode)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BatchBlock:
    """One basic block as a static lockstep-handler template."""

    start: int
    length: int
    makers: tuple
    term_maker: object
    mix: tuple


@dataclass(frozen=True)
class BatchProgram:
    """All basic blocks of one program, batched form (entry 0)."""

    blocks: tuple[BatchBlock, ...]
    n: int
    name: str
    insns_per_line: int

    def bind(self, ctx) -> list:
        """Bind every maker to ``ctx``; per-block
        ``(handlers, term, length)`` tuples."""
        return [
            (
                tuple(m(ctx) for m in b.makers),
                b.term_maker(ctx),
                b.length,
            )
            for b in self.blocks
        ]


def _build(program: Program, insns_per_line: int) -> BatchProgram:
    insns = program.instructions
    n = len(insns)
    control = (InsnClass.BRANCH, InsnClass.JUMP)
    leaders = {0}
    for i, insn in enumerate(insns):
        iclass = insn.info.iclass
        if iclass in control:
            if insn.target_index is not None and insn.target_index < n:
                leaders.add(insn.target_index)
            leaders.add(i + 1)
        elif insn.op is Opcode.HALT:
            leaders.add(i + 1)
    ordered = sorted(x for x in leaders if x < n)
    block_of = {pc: bi for bi, pc in enumerate(ordered)}
    bounds = ordered + [n]

    blocks = []
    for bi, start in enumerate(ordered):
        end = bounds[bi + 1]
        makers: list = []
        mix: Counter = Counter()
        term_maker = None
        for pc in range(start, end):
            insn = insns[pc]
            mix[insn.info.iclass] += 1
            line = pc // insns_per_line
            if pc == start:
                makers.append(_make_fetch(pc, line, conditional=True))
            elif pc % insns_per_line == 0:
                makers.append(_make_fetch(pc, line, conditional=False))
            iclass = insn.info.iclass
            if iclass is InsnClass.BRANCH:
                ti = insn.target_index
                tbi = block_of[ti] if ti < n else -2
                fbi = block_of.get(pc + 1, -2)
                term_maker = _make_branch(insn, tbi, fbi)
            elif iclass is InsnClass.JUMP:
                ti = insn.target_index
                term_maker = _make_jump(block_of[ti] if ti < n else -2)
            elif insn.op is Opcode.HALT:
                term_maker = _make_halt()
            else:
                makers.append(_make_exec(insn))
        if term_maker is None:
            term_maker = _make_fall(block_of.get(end, -2))
        blocks.append(BatchBlock(
            start=start,
            length=end - start,
            makers=tuple(makers),
            term_maker=term_maker,
            mix=tuple(mix.items()),
        ))
    return BatchProgram(
        blocks=tuple(blocks), n=n, name=program.name,
        insns_per_line=insns_per_line,
    )


# ---------------------------------------------------------------------------
# Decode cache (identity-keyed, weakref-guarded, like repro.cpu.decode)
# ---------------------------------------------------------------------------

_BATCH_DECODE_CACHE: dict[tuple[int, int], tuple] = {}


def batch_decode_program(program: Program,
                         insns_per_line: int | None = None) -> BatchProgram:
    """Decode ``program`` into lockstep blocks (cached by identity)."""
    if insns_per_line is None:
        from repro.cpu.cache import icache_config

        insns_per_line = max(1,
                             icache_config().line_bytes // _INSN_BYTES)
    key = (id(program), insns_per_line)
    entry = _BATCH_DECODE_CACHE.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    if not program.is_linked:
        program.link()
    program.validate()
    decoded = _build(program, insns_per_line)
    _BATCH_DECODE_CACHE[key] = (weakref.ref(program), decoded)
    weakref.finalize(program, _BATCH_DECODE_CACHE.pop, key, None)
    return decoded


def batch_decode_cache_size() -> int:
    """Number of live batch-decoded programs (tests/cache stats)."""
    return len(_BATCH_DECODE_CACHE)


def clear_batch_decode_caches() -> None:
    """Drop all batch-decoded programs (test isolation)."""
    _BATCH_DECODE_CACHE.clear()
