"""Batched lockstep backend: N timing configs of one program at once.

``BatchCore`` runs a *lane* — N sweep points that share one program,
one memory image, and one functional execution — in lockstep, as a
structure-of-arrays over per-point timing state.  The handlers come
from :mod:`repro.cpu.batchdecode`; see that module for the SoA layout
and the soundness argument (timing knobs cannot change architectural
values, so functional work is shared and done once).

The lowering is three composable passes, each independently testable:

1. **decode** — :func:`repro.cpu.batchdecode.batch_decode_program`
   lowers the program into basic blocks of lockstep handler makers
   (static; cached per program like the fast backend's predecode).
2. **batch-plan** — :func:`repro.harness.batch.plan_batches` groups
   sweep configs into lanes whose functional execution provably
   coincides, and singles out the rest.
3. **lockstep-execute** — ``BatchCore.run()`` binds the handlers to a
   batch context and walks the block graph once for the whole lane.

Divergence model: within a lane, control flow is *shared by
construction* (branches read shared registers), so points can only
diverge by faulting — most commonly a per-point ``max_instructions``
limit.  ``run()`` therefore splits lazily: at block entry, any point
whose limit would land inside the block is *evicted* (recorded in
``self.evicted``) and simply dropped from the active list; the caller
re-runs evicted points solo on the fast backend, which reproduces
byte-identical results including mid-block HALT-before-limit and the
exact stable error strings.  A fault in *shared* functional state
(e.g. a DySER flow-control error, or falling off the program end)
would hit every point identically, so the whole remaining batch is
evicted and replayed solo — correctness never depends on partially
poisoned lockstep state.  Points that survive to HALT "re-merge"
trivially: they were never apart.
"""

from __future__ import annotations

from repro.errors import ReproError, SimulationError
from repro.cpu.batchdecode import batch_decode_program
from repro.cpu.cache import Cache
from repro.cpu.core import Core, CoreConfig, _INSN_BYTES
from repro.cpu.memory import Memory
from repro.cpu.regfile import FpRegFile, IntRegFile
from repro.cpu.statistics import ExecStats, StallCause
from repro.dyser.interface import DyserDevice
from repro.isa.opcodes import InsnClass
from repro.isa.program import Program

#: StallCause by fast-path integer ID (declaration order).
_CAUSES = tuple(StallCause)

#: CoreConfig fields allowed to differ across the points of one lane.
#: Everything else shapes the shared functional execution (latencies
#: feed the shared handler tables; cache geometry shapes the shared
#: hierarchy) and must be equal.
PER_POINT_FIELDS = frozenset({"vector_port_words_per_cycle",
                              "max_instructions"})

_SHARED_FIELDS = (
    "alu_latency", "mul_latency", "div_latency", "fpu_latency",
    "fdiv_latency", "fpu_pipelined", "branch_taken_penalty",
    "icache", "dcache", "l2", "l1_to_l2_latency", "has_dyser",
    "trace_limit",
)


class _BatchCtx:
    """Mutable lockstep state the batched handlers bind against.

    Shared (one per lane): architectural registers ``ir``/``fr``,
    memory, the cache hierarchy accessors, the current fetch line
    ``fl`` and branch counter ``misc`` — plus the latency tables.
    Per point (lists indexed by point id): register scoreboards
    ``irdys``/``frdys`` with cause maps ``iczs``/``fczs``, stall
    accumulators ``sts``, structural scoreboards ``scs`` =
    ``[fpu_free, lsu_free, fabric_ready, store_queue_busy]``, cycle
    cursors ``tv``, DySER devices ``devs`` and port rates ``rates``.
    ``ap`` is the *active point list*; handlers iterate it, the core
    shrinks it on eviction.
    """

    __slots__ = (
        "ir", "fr", "irdys", "frdys", "iczs", "fczs", "sts", "scs",
        "tv", "ap", "fl", "misc", "mem", "devs", "da", "fa", "vca",
        "lats", "pipelined", "penalty", "ihit", "dhit", "rates",
    )

    def __init__(self, core: "BatchCore") -> None:
        cfg = core.config
        n = len(core.configs)
        self.ir = core.iregs._regs
        self.fr = core.fregs._regs
        self.irdys = [[0] * 32 for _ in range(n)]
        self.frdys = [[0] * 32 for _ in range(n)]
        self.iczs: list = [[None] * 32 for _ in range(n)]
        self.fczs: list = [[None] * 32 for _ in range(n)]
        self.sts = [[0] * len(_CAUSES) for _ in range(n)]
        self.scs = [[0, 0, 0, 0] for _ in range(n)]
        self.tv = [0] * n
        self.ap = list(range(n))
        self.fl = [-1]
        self.misc = [0]
        self.mem = core.memory
        self.devs = list(core.dysers)
        self.da = core._data_access
        self.fa = core._fetch_access
        self.vca = core._vector_cache_access
        self.lats = {
            InsnClass.ALU: cfg.alu_latency,
            InsnClass.MUL: cfg.mul_latency,
            InsnClass.DIV: cfg.div_latency,
            InsnClass.FPU: cfg.fpu_latency,
            InsnClass.FDIV: cfg.fdiv_latency,
        }
        self.pipelined = cfg.fpu_pipelined
        self.penalty = cfg.branch_taken_penalty
        self.ihit = cfg.icache.hit_latency
        self.dhit = cfg.dcache.hit_latency
        self.rates = [max(1, c.vector_port_words_per_cycle)
                      for c in core.configs]


class _PointView:
    """Adapter giving one point the attribute shape
    :meth:`Core._finalize_stats` expects."""

    _finalize_stats = Core._finalize_stats

    def __init__(self, stats, dcache, icache, dyser):
        self.stats = stats
        self.dcache = dcache
        self.icache = icache
        self.dyser = dyser


class BatchCore:
    """Lockstep core over one lane of N timing configurations.

    ``configs[p]`` and ``dysers[p]`` describe point *p*.  All configs
    must agree on every :class:`CoreConfig` field except
    ``vector_port_words_per_cycle`` and ``max_instructions``
    (:data:`PER_POINT_FIELDS`); devices must be attached to either
    every point or none.  ``run()`` returns per-point
    ``ExecStats | None`` — ``None`` marks a point recorded in
    ``self.evicted`` that must be replayed solo by the caller.
    """

    def __init__(
        self,
        program: Program,
        memory: Memory,
        dysers: list[DyserDevice | None],
        configs: list[CoreConfig],
    ) -> None:
        if not configs:
            raise SimulationError("BatchCore needs at least one config")
        if len(dysers) != len(configs):
            raise SimulationError(
                "BatchCore needs one DySER slot per config "
                f"({len(dysers)} devices, {len(configs)} configs)"
            )
        base = configs[0]
        for cfg in configs:
            if cfg.trace_limit:
                raise SimulationError(
                    "BatchCore does not support instruction traces "
                    "(CoreConfig.trace_limit); use the reference backend"
                )
            for name in _SHARED_FIELDS:
                if getattr(cfg, name) != getattr(base, name):
                    raise SimulationError(
                        f"batched points disagree on CoreConfig.{name}; "
                        "only timing knobs "
                        f"({', '.join(sorted(PER_POINT_FIELDS))}) may "
                        "vary within a batch"
                    )
        attached = [d is not None for d in dysers]
        if any(attached) and not all(attached):
            raise SimulationError(
                "batched points must all or none have a DySER device"
            )
        if attached[0] and not base.has_dyser:
            raise SimulationError(
                "DySER device attached to a core configured without one"
            )
        if not program.is_linked:
            program.link()
        program.validate()
        self.program = program
        self.memory = memory
        self.configs = list(configs)
        self.config = base
        self.dysers = list(dysers)
        for dev in self.dysers:
            if dev is not None:
                dev.register_program(program)
        self.iregs = IntRegFile()
        self.fregs = FpRegFile()
        self.icache = Cache(base.icache)
        self.dcache = Cache(base.dcache)
        self.l2 = Cache(base.l2) if base.l2 else None
        #: Point ids dropped from lockstep (limit landed inside a
        #: block, shared fault, or fell off the program end); the
        #: caller replays them solo.
        self.evicted: set[int] = set()

    # Shared helpers: byte-for-byte the reference implementations, so
    # the cache hierarchy and calling convention can never drift.
    set_args = Core.set_args
    _data_access = Core._data_access
    _fetch_access = Core._fetch_access
    _vector_cache_access = Core._vector_cache_access

    def run(self) -> list[ExecStats | None]:
        if self.program.spill_words:
            spill_base = self.memory.alloc(self.program.spill_words)
            self.iregs.write(28, spill_base)
        cfg = self.config
        insns_per_line = max(1, cfg.icache.line_bytes // _INSN_BYTES)
        decoded = batch_decode_program(self.program, insns_per_line)
        ctx = _BatchCtx(self)
        bound = decoded.bind(ctx)

        limits = [c.max_instructions for c in self.configs]
        ap = ctx.ap
        evicted = self.evicted
        counts = [0] * len(bound)
        executed = 0
        min_limit = min(limits[p] for p in ap)
        bi = 0
        while True:
            if bi < 0:
                if bi == -1:        # HALT retired for the whole lane
                    break
                # Fell off the program end: a shared-control fault that
                # hits every point identically (possibly as a limit
                # error first) — replay them all solo.
                evicted.update(ap)
                ap.clear()
                break
            handlers, term, length = bound[bi]
            ne = executed + length
            if ne > min_limit:
                # Some point's instruction limit lands inside this
                # block: split it out of lockstep.  Solo replay gives
                # exact semantics (per-instruction limit checks,
                # mid-block HALT-before-limit, stable error strings).
                keep = [p for p in ap if ne <= limits[p]]
                evicted.update(p for p in ap if ne > limits[p])
                ap[:] = keep
                if not ap:
                    break
                min_limit = min(limits[p] for p in ap)
            executed = ne
            counts[bi] += 1
            try:
                for h in handlers:
                    h()
                bi = term()
            except ReproError:
                # Faults raised from shared functional state (DySER
                # flow errors, missing device, ...) would hit every
                # point identically; evict the lane and let solo
                # replay reproduce each point's exact error.
                evicted.update(ap)
                ap.clear()
                break

        n = len(self.configs)
        results: list[ExecStats | None] = [None] * n
        if not ap:
            return results

        # Shared accounting: every surviving point executed the same
        # dynamic path, so block counts, instruction mix and taken
        # branches are computed once and copied per point.
        mix_totals: dict = {}
        total = 0
        blocks = decoded.blocks
        for idx, cnt in enumerate(counts):
            if not cnt:
                continue
            for iclass, m in blocks[idx].mix:
                mix_totals[iclass] = mix_totals.get(iclass, 0) + m * cnt
                total += m * cnt
        branches = ctx.misc[0]

        for p in ap:
            stats = ExecStats()
            mix = stats.insn_mix
            for iclass, m in mix_totals.items():
                mix[iclass] += m
            stats.instructions += total
            stats.branches_taken += branches
            stall = stats.stall_cycles
            for cid, cycles in enumerate(ctx.sts[p]):
                if cycles:
                    stall[_CAUSES[cid]] += cycles
            stats.cycles = ctx.tv[p]
            _PointView(stats, self.dcache, self.icache,
                       self.dysers[p])._finalize_stats()
            results[p] = stats
        return results
