"""OpenSPARC-T1-flavoured in-order core: functional execution with
one-pass scoreboard timing.

The model executes the program functionally, instruction by instruction,
and computes cycle timing as it goes using the standard in-order scoreboard
technique: each register carries the cycle its value becomes available; an
instruction issues at the max of the issue cursor and its operands' ready
times; taken branches, cache misses, the unpipelined FPU and DySER port
flow control all push times forward.  For a single-issue in-order pipeline
this one-pass model is cycle-exact up to the fetch-bubble approximations
documented on :class:`CoreConfig`.

T1-flavoured parameters: no branch prediction (taken-branch bubble),
a long-latency shared FPU (unpipelined by default — a major reason DySER
helps FP kernels on the prototype), write-through D$.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.cpu.cache import Cache, CacheConfig, dcache_config, icache_config
from repro.cpu.memory import WORD_BYTES, Memory
from repro.cpu.regfile import FpRegFile, IntRegFile, wrap64
from repro.cpu.statistics import ExecStats, StallCause
from repro.dyser.interface import DyserDevice
from repro.dyser.ops import int_div, int_rem
from repro.isa.opcodes import InsnClass, Opcode
from repro.isa.program import Program

_INSN_BYTES = 4


@dataclass
class CoreConfig:
    """Microarchitectural parameters of the host core."""

    # Functional-unit result latencies (cycles from issue).  The FP
    # numbers are T1-flavoured: the prototype's shared, unpipelined FFU
    # makes every scalar FP op cost ~10+ cycles, which is a large part of
    # why DySER's fused datapaths win so much on FP kernels.
    alu_latency: int = 1
    mul_latency: int = 7
    div_latency: int = 40
    fpu_latency: int = 12
    fdiv_latency: int = 38
    fpu_pipelined: bool = False        # T1's shared FPU is effectively not
    branch_taken_penalty: int = 4      # no prediction, late resolution
    icache: CacheConfig = field(default_factory=icache_config)
    dcache: CacheConfig = field(default_factory=dcache_config)
    #: Optional unified L2 behind both L1s (None = L1 misses go straight
    #: to DRAM at the L1's miss latency — the default calibration).
    l2: CacheConfig | None = None
    l1_to_l2_latency: int = 2
    # DySER integration.
    has_dyser: bool = True
    vector_port_words_per_cycle: int = 2   # port fill rate for dldv/dstv
    # Safety valve against runaway programs.
    max_instructions: int = 200_000_000
    #: Record the first N executed instructions as (cycle, pc, text)
    #: tuples on ``core.trace`` (0 disables; tracing is free when off).
    trace_limit: int = 0

    def latency_for(self, iclass: InsnClass) -> int:
        table = {
            InsnClass.ALU: self.alu_latency,
            InsnClass.MUL: self.mul_latency,
            InsnClass.DIV: self.div_latency,
            InsnClass.FPU: self.fpu_latency,
            InsnClass.FDIV: self.fdiv_latency,
            InsnClass.MOVE: 1,
        }
        return table.get(iclass, 1)


class Core:
    """One host core, optionally with a DySER device attached.

    Usage::

        core = Core(program, memory, dyser=device)
        stats = core.run()
    """

    def __init__(
        self,
        program: Program,
        memory: Memory,
        dyser: DyserDevice | None = None,
        config: CoreConfig | None = None,
        events=None,
        trace_instructions: bool = False,
    ) -> None:
        if not program.is_linked:
            program.link()
        program.validate()
        self.program = program
        self.memory = memory
        self.config = config or CoreConfig()
        self.dyser = dyser
        if dyser is not None:
            if not self.config.has_dyser:
                raise SimulationError(
                    "DySER device attached to a core configured without one"
                )
            dyser.register_program(program)
        self.iregs = IntRegFile()
        self.fregs = FpRegFile()
        self.icache = Cache(self.config.icache)
        self.dcache = Cache(self.config.dcache)
        self.l2 = Cache(self.config.l2) if self.config.l2 else None
        self.stats = ExecStats()
        #: Execution trace (populated when config.trace_limit > 0).
        self.trace: list[tuple[int, int, str]] = []
        #: Structured event stream (:mod:`repro.obs.events`) or None.
        #: Every emit site is guarded, so a None stream costs nothing.
        self.events = events
        self.trace_instructions = trace_instructions

    # -- helpers -------------------------------------------------------------

    def set_args(self, int_args=(), fp_args=()) -> None:
        """Install kernel arguments per the calling convention."""
        from repro.isa.instruction import ARG_FP_REGS, ARG_INT_REGS

        if len(int_args) > len(ARG_INT_REGS) or len(fp_args) > len(ARG_FP_REGS):
            raise SimulationError("too many kernel arguments")
        for reg, value in zip(ARG_INT_REGS, int_args, strict=False):
            self.iregs.write(reg, int(value))
        for reg, value in zip(ARG_FP_REGS, fp_args, strict=False):
            self.fregs.write(reg, float(value))


    # -- cache hierarchy -------------------------------------------------

    def _data_access(self, addr: int, is_write: bool = False) -> int:
        """One data access through L1 (and the optional L2)."""
        lat = self.dcache.access(addr, is_write)
        if self.l2 is None or is_write:
            # Write-through traffic is absorbed by the store buffer.
            return lat
        if lat <= self.config.dcache.hit_latency:
            return lat
        return (self.config.dcache.hit_latency
                + self.config.l1_to_l2_latency
                + self.l2.access(addr))

    def _fetch_access(self, addr: int) -> int:
        lat = self.icache.access(addr)
        if self.l2 is None or lat <= self.config.icache.hit_latency:
            return lat
        return (self.config.icache.hit_latency
                + self.config.l1_to_l2_latency
                + self.l2.access(addr))

    # -- the simulator loop ----------------------------------------------------

    def run(self) -> ExecStats:
        if self.program.spill_words:
            spill_base = self.memory.alloc(self.program.spill_words)
            self.iregs.write(28, spill_base)
        cfg = self.config
        program = self.program.instructions
        mem = self.memory
        iregs, fregs = self.iregs, self.fregs
        stats = self.stats
        insns_per_line = max(1, cfg.icache.line_bytes // _INSN_BYTES)

        int_ready = [0] * 32
        fp_ready = [0] * 32
        int_cause: list[StallCause | None] = [None] * 32
        fp_cause: list[StallCause | None] = [None] * 32

        t = 0                   # next issue slot
        pc = 0
        fpu_free = 0
        lsu_free = 0
        fabric_ready = 0
        self._store_queue_busy = 0
        cur_fetch_line = -1
        executed = 0
        O = Opcode
        ev = self.events
        ev_insn = ev if (ev is not None and self.trace_instructions) \
            else None

        def charge(cause: StallCause, amount: int) -> None:
            if amount > 0:
                stats.stall_cycles[cause] += amount
                if ev is not None:
                    ev.complete(cause.value, "cpu.stall", t, amount, pc=pc)

        def src_wait(regs_ready, regs_cause, indices, base: int):
            """Return (issue floor, dominating cause) for source regs."""
            floor, cause = base, None
            for idx in indices:
                r = regs_ready[idx]
                if r > floor:
                    floor, cause = r, regs_cause[idx]
            return floor, cause

        while True:
            if executed >= cfg.max_instructions:
                raise SimulationError(
                    f"instruction limit {cfg.max_instructions} exceeded "
                    f"(runaway loop in {self.program.name}?)"
                )
            try:
                insn = program[pc]
            except IndexError:
                raise SimulationError(
                    f"pc {pc} fell off the end of {self.program.name}"
                ) from None

            # Fetch: charge an I$ bubble when moving to a new line.
            line = pc // insns_per_line
            if line != cur_fetch_line:
                lat = self._fetch_access(pc * _INSN_BYTES)
                cur_fetch_line = line
                if lat > cfg.icache.hit_latency:
                    charge(StallCause.FETCH_MISS, lat)
                    t += lat
            op = insn.op
            iclass = insn.info.iclass
            stats.count(iclass)
            executed += 1
            if cfg.trace_limit and len(self.trace) < cfg.trace_limit:
                self.trace.append((t, pc, insn.text()))
            next_pc = pc + 1
            t_issue = t

            # ---------------- integer ALU -------------------------------
            if iclass in (InsnClass.ALU, InsnClass.MUL, InsnClass.DIV):
                if op is O.SEL:
                    srcs = (insn.rs1, insn.rs2, insn.rs3)
                elif insn.imm is not None and op.value.endswith("i"):
                    srcs = (insn.rs1,)
                else:
                    srcs = (insn.rs1, insn.rs2)
                issue, cause = src_wait(int_ready, int_cause, srcs, t)
                charge(cause or StallCause.DATA_HAZARD, issue - t)
                lat = cfg.latency_for(iclass)
                value = self._eval_int(insn)
                iregs.write(insn.rd, value)
                if insn.rd != 0:
                    int_ready[insn.rd] = issue + lat
                    int_cause[insn.rd] = None
                t = issue + 1

            # ---------------- moves / immediates ------------------------
            elif iclass is InsnClass.MOVE:
                if op is O.LI:
                    iregs.write(insn.rd, int(insn.imm))
                    self._retire_int(insn.rd, t + 1, int_ready, int_cause)
                    t += 1
                elif op is O.MOV:
                    issue, cause = src_wait(
                        int_ready, int_cause, (insn.rs1,), t)
                    charge(cause or StallCause.DATA_HAZARD, issue - t)
                    iregs.write(insn.rd, iregs.read(insn.rs1))
                    self._retire_int(insn.rd, issue + 1, int_ready, int_cause)
                    t = issue + 1
                elif op is O.FLI:
                    fregs.write(insn.rd, float(insn.imm))
                    fp_ready[insn.rd] = t + 1
                    fp_cause[insn.rd] = None
                    t += 1
                else:  # FMOV
                    issue, cause = src_wait(fp_ready, fp_cause, (insn.rs1,), t)
                    charge(cause or StallCause.DATA_HAZARD, issue - t)
                    fregs.write(insn.rd, fregs.read(insn.rs1))
                    fp_ready[insn.rd] = issue + 1
                    fp_cause[insn.rd] = None
                    t = issue + 1

            # ---------------- floating point ----------------------------
            elif iclass in (InsnClass.FPU, InsnClass.FDIV):
                int_srcs: tuple[int, ...] = ()
                fp_srcs: tuple[int, ...] = ()
                if op is O.I2F:
                    int_srcs = (insn.rs1,)
                elif op is O.F2I:
                    fp_srcs = (insn.rs1,)
                elif op in (O.FSQRT, O.FNEG, O.FABS):
                    fp_srcs = (insn.rs1,)
                elif op in (O.FLT, O.FLE, O.FEQ):
                    fp_srcs = (insn.rs1, insn.rs2)
                elif op is O.FSEL:
                    int_srcs = (insn.rs1,)
                    fp_srcs = (insn.rs2, insn.rs3)
                else:
                    fp_srcs = (insn.rs1, insn.rs2)
                issue, cause1 = src_wait(int_ready, int_cause, int_srcs, t)
                issue, cause2 = src_wait(fp_ready, fp_cause, fp_srcs, issue)
                cause = cause2 or cause1
                if not cfg.fpu_pipelined and fpu_free > issue:
                    charge(StallCause.STRUCTURAL_FPU, fpu_free - issue)
                    charge(cause or StallCause.DATA_HAZARD, issue - t)
                    issue = fpu_free
                else:
                    charge(cause or StallCause.DATA_HAZARD, issue - t)
                lat = cfg.latency_for(iclass)
                fpu_free = issue + lat
                self._eval_fp(insn, issue + lat, fp_ready, fp_cause,
                              int_ready, int_cause)
                t = issue + 1

            # ---------------- memory ------------------------------------
            elif iclass is InsnClass.LOAD:
                issue, cause = src_wait(int_ready, int_cause, (insn.rs1,),
                                        max(t, lsu_free))
                charge(cause or StallCause.DATA_HAZARD, issue - t)
                addr = iregs.read(insn.rs1) + int(insn.imm)
                lat = self._data_access(addr)
                value = mem.load_word(addr)
                missed = lat > cfg.dcache.hit_latency
                if op is O.LD:
                    iregs.write(insn.rd, int(value))
                    self._retire_int(
                        insn.rd, issue + lat, int_ready, int_cause,
                        StallCause.LOAD_MISS if missed else None)
                else:
                    fregs.write(insn.rd, float(value))
                    fp_ready[insn.rd] = issue + lat
                    fp_cause[insn.rd] = (
                        StallCause.LOAD_MISS if missed else None)
                lsu_free = issue + 1
                t = issue + 1

            elif iclass is InsnClass.STORE:
                if op is O.ST:
                    issue, cause = src_wait(
                        int_ready, int_cause, (insn.rs1, insn.rs2),
                        max(t, lsu_free))
                    value: int | float = iregs.read(insn.rs2)
                else:
                    issue, cause = src_wait(
                        int_ready, int_cause, (insn.rs1,), max(t, lsu_free))
                    issue, c2 = src_wait(fp_ready, fp_cause, (insn.rs2,),
                                         issue)
                    cause = c2 or cause
                    value = fregs.read(insn.rs2)
                charge(cause or StallCause.DATA_HAZARD, issue - t)
                addr = iregs.read(insn.rs1) + int(insn.imm)
                self._data_access(addr, is_write=True)
                mem.store_word(addr, value)
                lsu_free = issue + 1
                t = issue + 1

            # ---------------- control flow --------------------------------
            elif iclass is InsnClass.BRANCH:
                issue, cause = src_wait(
                    int_ready, int_cause, (insn.rs1, insn.rs2), t)
                charge(cause or StallCause.DATA_HAZARD, issue - t)
                taken = self._branch_taken(insn)
                if taken:
                    stats.branches_taken += 1
                    next_pc = insn.target_index
                    charge(StallCause.BRANCH, cfg.branch_taken_penalty)
                    if ev is not None:
                        ev.instant("branch_redirect", "cpu", issue,
                                   pc=pc, target=next_pc)
                    t = issue + 1 + cfg.branch_taken_penalty
                else:
                    t = issue + 1

            elif iclass is InsnClass.JUMP:
                next_pc = insn.target_index
                stats.branches_taken += 1
                charge(StallCause.BRANCH, cfg.branch_taken_penalty)
                if ev is not None:
                    ev.instant("branch_redirect", "cpu", t,
                               pc=pc, target=next_pc)
                t = t + 1 + cfg.branch_taken_penalty

            # ---------------- DySER extension -----------------------------
            elif insn.info.is_dyser:
                t, next_fabric_ready = self._exec_dyser(
                    insn, t, lsu_free, fabric_ready,
                    int_ready, int_cause, fp_ready, fp_cause)
                if next_fabric_ready is not None:
                    fabric_ready = next_fabric_ready
                if insn.info.is_memory:
                    lsu_free = self._lsu_after(insn, t)

            # ---------------- system --------------------------------------
            elif op is O.NOP:
                t += 1
            elif op is O.HALT:
                # Drain the decoupled DySER store queue before retiring.
                t = max(t, self._store_queue_busy) + 1
                break
            else:  # pragma: no cover - every opcode is handled above
                raise SimulationError(f"unhandled opcode {op}")

            if ev_insn is not None:
                ev_insn.complete(op.value, "cpu.issue", t_issue,
                                 max(1, t - t_issue), pc=pc)
            pc = next_pc

        if ev_insn is not None:
            ev_insn.complete(op.value, "cpu.issue", t_issue,
                             max(1, t - t_issue), pc=pc)
        if ev is not None:
            ev.complete("run", "cpu", 0, t,
                        instructions=stats.instructions)
        stats.cycles = t
        self._finalize_stats()
        return stats

    # -- functional evaluation helpers -------------------------------------

    def _retire_int(self, rd, ready, int_ready, int_cause, cause=None):
        if rd != 0:
            int_ready[rd] = ready
            int_cause[rd] = cause

    def _eval_int(self, insn) -> int:
        O = Opcode
        r = self.iregs.read
        a = r(insn.rs1) if insn.rs1 is not None else 0
        op = insn.op
        if op is O.SEL:
            return r(insn.rs2) if a else r(insn.rs3)
        b = int(insn.imm) if insn.imm is not None else (
            r(insn.rs2) if insn.rs2 is not None else 0)
        if op in (O.ADD, O.ADDI):
            return a + b
        if op is O.SUB:
            return a - b
        if op in (O.MUL, O.MULI):
            return a * b
        if op is O.DIV:
            return int_div(a, b)
        if op is O.REM:
            return int_rem(a, b)
        if op in (O.AND, O.ANDI):
            return a & b
        if op in (O.OR, O.ORI):
            return a | b
        if op in (O.XOR, O.XORI):
            return a ^ b
        if op in (O.SLL, O.SLLI):
            return a << (b & 63)
        if op in (O.SRL, O.SRLI):
            return (a & ((1 << 64) - 1)) >> (b & 63)
        if op in (O.SRA, O.SRAI):
            return a >> (b & 63)
        if op in (O.SLT, O.SLTI):
            return 1 if a < b else 0
        if op is O.SEQ:
            return 1 if a == b else 0
        if op is O.MIN:
            return min(a, b)
        if op is O.MAX:
            return max(a, b)
        raise SimulationError(f"unhandled int op {op}")  # pragma: no cover

    def _eval_fp(self, insn, ready, fp_ready, fp_cause, int_ready, int_cause):
        import math

        O = Opcode
        fr, ir = self.fregs.read, self.iregs.read
        op = insn.op
        if op in (O.FLT, O.FLE, O.FEQ, O.F2I):
            if op is O.FLT:
                value = 1 if fr(insn.rs1) < fr(insn.rs2) else 0
            elif op is O.FLE:
                value = 1 if fr(insn.rs1) <= fr(insn.rs2) else 0
            elif op is O.FEQ:
                value = 1 if fr(insn.rs1) == fr(insn.rs2) else 0
            else:
                value = wrap64(int(fr(insn.rs1)))
            self.iregs.write(insn.rd, value)
            self._retire_int(insn.rd, ready, int_ready, int_cause)
            return
        if op is O.I2F:
            result = float(ir(insn.rs1))
        elif op is O.FADD:
            result = fr(insn.rs1) + fr(insn.rs2)
        elif op is O.FSUB:
            result = fr(insn.rs1) - fr(insn.rs2)
        elif op is O.FMUL:
            result = fr(insn.rs1) * fr(insn.rs2)
        elif op is O.FDIV:
            b = fr(insn.rs2)
            result = fr(insn.rs1) / b if b else math.inf
        elif op is O.FSQRT:
            a = fr(insn.rs1)
            result = math.sqrt(a) if a >= 0.0 else math.nan
        elif op is O.FNEG:
            result = -fr(insn.rs1)
        elif op is O.FABS:
            result = abs(fr(insn.rs1))
        elif op is O.FMIN:
            result = min(fr(insn.rs1), fr(insn.rs2))
        elif op is O.FMAX:
            result = max(fr(insn.rs1), fr(insn.rs2))
        elif op is O.FSEL:
            result = fr(insn.rs2) if ir(insn.rs1) else fr(insn.rs3)
        else:  # pragma: no cover
            raise SimulationError(f"unhandled fp op {op}")
        self.fregs.write(insn.rd, result)
        fp_ready[insn.rd] = ready
        fp_cause[insn.rd] = None

    def _branch_taken(self, insn) -> bool:
        O = Opcode
        a, b = self.iregs.read(insn.rs1), self.iregs.read(insn.rs2)
        return {
            O.BEQ: a == b, O.BNE: a != b, O.BLT: a < b,
            O.BGE: a >= b, O.BLE: a <= b, O.BGT: a > b,
        }[insn.op]

    # -- DySER op execution --------------------------------------------------

    def _exec_dyser(self, insn, t, lsu_free, fabric_ready,
                    int_ready, int_cause, fp_ready, fp_cause):
        """Execute one DySER-extension instruction.

        Returns (new issue cursor, new fabric_ready or None).
        """
        if self.dyser is None:
            raise SimulationError(
                f"{insn.op.value} executed on a core without DySER"
            )
        O = Opcode
        cfg = self.config
        dev = self.dyser
        stats = self.stats
        op = insn.op
        ev = self.events

        def charge(cause, amount):
            if amount > 0:
                stats.stall_cycles[cause] += amount
                if ev is not None:
                    ev.complete(cause.value, "cpu.stall", t, amount,
                                op=op.value)

        if op is O.DINIT:
            ready = dev.init_config(int(insn.imm), t)
            charge(StallCause.DYSER_CONFIG, ready - t)
            return ready + 1, ready

        if op in (O.DSEND, O.DFSEND):
            if op is O.DSEND:
                issue, cause = self._wait(int_ready, int_cause,
                                          (insn.rs1,), t)
                value: int | float = self.iregs.read(insn.rs1)
            else:
                issue, cause = self._wait(fp_ready, fp_cause, (insn.rs1,), t)
                value = self.fregs.read(insn.rs1)
            charge(cause or StallCause.DATA_HAZARD, issue - t)
            if fabric_ready > issue:
                charge(StallCause.DYSER_CONFIG, fabric_ready - issue)
                issue = fabric_ready
            done = dev.send(insn.port, value, issue)
            charge(StallCause.DYSER_SEND, done - issue)
            return max(issue, done) + 1, None

        if op in (O.DRECV, O.DFRECV):
            issue = max(t, fabric_ready)
            charge(StallCause.DYSER_CONFIG, issue - t)
            value, done = dev.recv(insn.port, issue)
            charge(StallCause.DYSER_RECV, done - issue)
            if op is O.DRECV:
                self.iregs.write(insn.rd, int(value))
                self._retire_int(insn.rd, done, int_ready, int_cause,
                                 StallCause.DYSER_RECV)
            else:
                self.fregs.write(insn.rd, float(value))
                fp_ready[insn.rd] = done
                fp_cause[insn.rd] = StallCause.DYSER_RECV
            return done + 1, None

        if op in (O.DLD, O.DFLD, O.DLDV, O.DFLDV, O.DLDW, O.DFLDW):
            issue, cause = self._wait(int_ready, int_cause, (insn.rs1,),
                                      max(t, lsu_free))
            if lsu_free > t and issue == lsu_free:
                cause = cause or StallCause.LSU_BUSY
            charge(cause or StallCause.DATA_HAZARD, issue - t)
            if fabric_ready > issue:
                charge(StallCause.DYSER_CONFIG, fabric_ready - issue)
                issue = fabric_ready
            base = self.iregs.read(insn.rs1)
            if op in (O.DLD, O.DFLD):
                addr = base + int(insn.imm)
                lat = self._data_access(addr)
                value = self.memory.load_word(addr)
                value = (float(value) if op is O.DFLD
                         else int(value))
                done = dev.send(insn.port, value, issue + lat)
                charge(StallCause.DYSER_SEND, done - (issue + lat))
            else:
                count = int(insn.imm)
                wide = op in (O.DLDW, O.DFLDW)
                fp = op in (O.DFLDV, O.DFLDW)
                lat = self._vector_cache_access(base, count, is_write=False)
                values = self.memory.load_block(base, count)
                rate = max(1, cfg.vector_port_words_per_cycle)
                for i, value in enumerate(values):
                    value = float(value) if fp else int(value)
                    arrive = issue + lat + i // rate
                    port = insn.port + i if wide else insn.port
                    done = dev.send(port, value, arrive)
                    charge(StallCause.DYSER_SEND, done - arrive)
            return issue + 1, None

        if op in (O.DST, O.DFST, O.DSTV, O.DFSTV, O.DSTW, O.DFSTW):
            issue, cause = self._wait(int_ready, int_cause, (insn.rs1,),
                                      max(t, lsu_free))
            if lsu_free > t and issue == lsu_free:
                cause = cause or StallCause.LSU_BUSY
            charge(cause or StallCause.DATA_HAZARD, issue - t)
            if fabric_ready > issue:
                charge(StallCause.DYSER_CONFIG, fabric_ready - issue)
                issue = fabric_ready
            # Port-to-memory stores are *decoupled*: the instruction
            # retires once it enters the store queue; the LSU drains the
            # output port when the data arrives (the prototype's
            # microarchitecture — the pipeline never waits on them).
            base = self.iregs.read(insn.rs1)
            if op in (O.DST, O.DFST):
                value, done = dev.recv(insn.port, issue)
                addr = base + int(insn.imm)
                self._data_access(addr, is_write=True)
                self.memory.store_word(
                    addr, float(value) if op is O.DFST else int(value))
                self._store_queue_busy = max(self._store_queue_busy, done)
                return issue + 1, None
            count = int(insn.imm)
            wide = op in (O.DSTW, O.DFSTW)
            done = issue
            values = []
            for i in range(count):
                port = insn.port + i if wide else insn.port
                value, done = dev.recv(port, done)
                values.append(value)
            self._vector_cache_access(base, count, is_write=True)
            cast = float if op in (O.DFSTV, O.DFSTW) else int
            self.memory.store_block(base, [cast(v) for v in values])
            self._store_queue_busy = max(self._store_queue_busy, done)
            return issue + 1, None

        raise SimulationError(f"unhandled DySER op {op}")  # pragma: no cover

    def _wait(self, regs_ready, regs_cause, indices, base):
        floor, cause = base, None
        for idx in indices:
            if regs_ready[idx] > floor:
                floor, cause = regs_ready[idx], regs_cause[idx]
        return floor, cause

    def _vector_cache_access(self, base: int, count: int, is_write: bool) -> int:
        """Access every line a vector transfer touches; return max latency."""
        line = self.config.dcache.line_bytes
        lat = self.config.dcache.hit_latency
        addr = base
        end = base + count * WORD_BYTES
        seen = set()
        while addr < end:
            key = addr // line
            if key not in seen:
                seen.add(key)
                lat = max(lat, self._data_access(addr, is_write=is_write))
            addr += WORD_BYTES
        return lat

    def _lsu_after(self, insn, t_next: int) -> int:
        """LSU occupancy after a DySER memory op (vector ops hold it)."""
        from repro.isa.opcodes import MULTI_OPS

        if insn.op in MULTI_OPS:
            count = int(insn.imm)
            rate = max(1, self.config.vector_port_words_per_cycle)
            return t_next - 1 + max(1, count // rate)
        return t_next

    # -- wrap-up ----------------------------------------------------------------

    def _finalize_stats(self) -> None:
        stats = self.stats
        stats.dcache_hits = self.dcache.stats.hits + self.dcache.stats.write_hits
        stats.dcache_misses = (
            self.dcache.stats.misses + self.dcache.stats.write_misses
        )
        stats.icache_misses = self.icache.stats.misses
        if self.dyser is not None:
            dstats = self.dyser.finalize()
            stats.dyser_invocations = dstats.invocations
            stats.dyser_values_sent = dstats.values_sent
            stats.dyser_values_received = dstats.values_received
            stats.dyser_config_loads = dstats.config_loads
            stats.dyser_config_hits = dstats.config_hits
            stats.dyser_fu_ops = dstats.fu_ops
            stats.dyser_switch_hops = dstats.switch_hops
            stats.dyser_config_words = dstats.config_words_loaded
            # Finer-grained counters ride the open-ended metrics
            # registry instead of growing ExecStats' schema.
            metrics = stats.metrics
            if dstats.config_stall_cycles:
                metrics.counter(
                    "dyser.config.stall_cycles",
                    "cycles the pipeline waited on configuration loads",
                ).inc(dstats.config_stall_cycles)
            if dstats.unresolved_flow_stalls:
                metrics.counter(
                    "dyser.flow.unresolved_stalls",
                    "port flow-control waits with no resolution cycle",
                ).inc(dstats.unresolved_flow_stalls)
            for port, cyc in sorted(self.dyser.send_stall_cycles.items()):
                metrics.counter(
                    f"dyser.port.in{port}.stall_cycles",
                    "send cycles lost to input FIFO backpressure",
                ).inc(cyc)
            for port, cyc in sorted(self.dyser.recv_stall_cycles.items()):
                metrics.counter(
                    f"dyser.port.out{port}.stall_cycles",
                    "recv cycles spent waiting on fabric outputs",
                ).inc(cyc)
