"""Word-typed main memory with a bump allocator.

The simulator operates on 8-byte words (64-bit integers and doubles), which
matches what the evaluation needs — dynamic instruction counts, addresses
and cache behaviour — without modelling byte-level packing.  Addresses are
byte addresses and must be 8-byte aligned; each word slot holds a Python
``int`` or ``float``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import MemoryFault

WORD_BYTES = 8


class Memory:
    """Flat, bounds-checked, word-typed memory.

    Args:
        size_bytes: total capacity; must be a multiple of 8.
        fill: initial value of every word.
    """

    def __init__(self, size_bytes: int = 1 << 22, fill: int = 0) -> None:
        if size_bytes % WORD_BYTES:
            raise ValueError("memory size must be a multiple of 8 bytes")
        self.size_bytes = size_bytes
        self._words: list[int | float] = [fill] * (size_bytes // WORD_BYTES)
        # Bump allocator: reserve word 0 so address 0 acts as a null guard.
        self._brk = WORD_BYTES

    # -- address helpers --------------------------------------------------

    def _index(self, address: int) -> int:
        if address % WORD_BYTES:
            raise MemoryFault(address, "misaligned word access")
        if not 0 <= address < self.size_bytes:
            raise MemoryFault(address)
        return address // WORD_BYTES

    # -- scalar access ----------------------------------------------------

    def load_word(self, address: int) -> int | float:
        return self._words[self._index(address)]

    def store_word(self, address: int, value: int | float) -> None:
        self._words[self._index(address)] = value

    # -- block access -----------------------------------------------------

    def load_block(self, address: int, count: int) -> list[int | float]:
        start = self._index(address)
        end = start + count
        if end > len(self._words):
            raise MemoryFault(address + count * WORD_BYTES)
        return self._words[start:end]

    def store_block(self, address: int, values: Sequence[int | float]) -> None:
        start = self._index(address)
        end = start + len(values)
        if end > len(self._words):
            raise MemoryFault(address + len(values) * WORD_BYTES)
        self._words[start:end] = list(values)

    # -- allocation -------------------------------------------------------

    def alloc(self, nwords: int) -> int:
        """Reserve ``nwords`` consecutive words; return the base address."""
        if nwords < 0:
            raise ValueError("negative allocation")
        address = self._brk
        self._brk += nwords * WORD_BYTES
        if self._brk > self.size_bytes:
            raise MemoryFault(address, "out of memory")
        return address

    def alloc_array(self, values: Iterable[int | float]) -> int:
        """Allocate and initialize an array; return its base address."""
        data = list(values)
        address = self.alloc(len(data))
        self.store_block(address, data)
        return address

    # -- numpy bridges (workload setup / verification) ---------------------

    def write_numpy(self, address: int, array: np.ndarray) -> None:
        flat = array.ravel()
        if np.issubdtype(flat.dtype, np.floating):
            self.store_block(address, [float(x) for x in flat])
        else:
            self.store_block(address, [int(x) for x in flat])

    def read_numpy(self, address: int, count: int, dtype=np.float64) -> np.ndarray:
        return np.array(self.load_block(address, count), dtype=dtype)

    def alloc_numpy(self, array: np.ndarray) -> int:
        address = self.alloc(array.size)
        self.write_numpy(address, array)
        return address
