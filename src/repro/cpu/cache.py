"""Set-associative cache timing model.

Tag-only: data lives in :class:`repro.cpu.memory.Memory`; the cache decides
hit or miss and keeps statistics.  This matches the fidelity the evaluation
needs — miss stalls and their distribution — and is the standard technique
for functional-first simulators.

Defaults mirror the OpenSPARC T1 L1s: 16 KiB 4-way I$, 8 KiB 4-way D$,
write-through / no-write-allocate D$.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str = "dcache"
    size_bytes: int = 8 * 1024
    ways: int = 4
    line_bytes: int = 32
    hit_latency: int = 1
    miss_latency: int = 24          # L1 miss to the FPGA DDR controller
    write_allocate: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(f"{self.name}: size not divisible by ways*line")
        self.num_sets = self.size_bytes // (self.ways * self.line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{self.name}: set count must be a power of two")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    write_hits: int = 0
    write_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.write_hits + self.write_misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return (self.misses + self.write_misses) / total if total else 0.0


class Cache:
    """LRU set-associative cache with read/write access methods.

    ``access`` returns the latency of the access in cycles; write misses
    under no-write-allocate are counted but cost nothing extra (the T1 D$
    is write-through with a store buffer).
    """

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        # Per set: list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self.config.num_sets)]

    def _locate(self, address: int) -> tuple[list[int], int]:
        line = address // self.config.line_bytes
        set_index = line & (self.config.num_sets - 1)
        tag = line >> self.config.num_sets.bit_length() - 1
        return self._sets[set_index], tag

    def _touch(self, ways: list[int], tag: int) -> bool:
        """Move ``tag`` to MRU position; return True on hit."""
        try:
            ways.remove(tag)
        except ValueError:
            return False
        ways.append(tag)
        return True

    def _fill(self, ways: list[int], tag: int) -> None:
        if len(ways) >= self.config.ways:
            ways.pop(0)  # evict LRU
        ways.append(tag)

    def access(self, address: int, is_write: bool = False) -> int:
        """Simulate one access; return its latency in cycles."""
        ways, tag = self._locate(address)
        hit = self._touch(ways, tag)
        if is_write:
            if hit:
                self.stats.write_hits += 1
            else:
                self.stats.write_misses += 1
                if self.config.write_allocate:
                    self._fill(ways, tag)
            return self.config.hit_latency
        if hit:
            self.stats.hits += 1
            return self.config.hit_latency
        self.stats.misses += 1
        self._fill(ways, tag)
        return self.config.miss_latency

    def probe(self, address: int) -> bool:
        """Non-modifying hit check (used by tests)."""
        ways, tag = self._locate(address)
        return tag in ways

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]


def icache_config() -> CacheConfig:
    """OpenSPARC-T1-like instruction cache geometry.

    Miss latency is in *core* cycles: at the prototype's 50 MHz the
    memory-board DRAM looks close, so misses are cheap relative to an
    ASIC-clocked core.
    """
    return CacheConfig(name="icache", size_bytes=16 * 1024, ways=4,
                       line_bytes=32, hit_latency=0, miss_latency=12)


def dcache_config() -> CacheConfig:
    """OpenSPARC-T1-like data cache geometry (see icache note on misses)."""
    return CacheConfig(name="dcache", size_bytes=8 * 1024, ways=4,
                       line_bytes=32, hit_latency=1, miss_latency=12)


def l2_config() -> CacheConfig:
    """Optional unified L2 (the T1's on-chip L2, scaled to the FPGA).

    When a core is configured with an L2, an L1 miss costs a 2-cycle
    L1-to-L2 hop plus this cache's hit latency, or its miss latency on
    the way to DRAM; the L1's own ``miss_latency`` is then unused.
    """
    return CacheConfig(name="l2", size_bytes=256 * 1024, ways=8,
                       line_bytes=64, hit_latency=6, miss_latency=28,
                       write_allocate=True)
