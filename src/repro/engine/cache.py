"""Persistent, content-addressed artifact cache.

Two kinds of entries, both JSON files on disk:

- ``run`` entries — finished :class:`repro.harness.RunResult` summaries
  (cycle counters, energy breakdown, correctness, region metadata),
  keyed by :attr:`JobSpec.job_hash`;
- ``compile`` entries — compiled program bundles
  (:mod:`repro.harness.bundle`) plus region reports, keyed by
  :attr:`JobSpec.compile_hash` (which includes the kernel source hash).

Every entry additionally lives under a *code-version fingerprint*
directory — a hash of every ``.py`` file in ``src/repro`` — so editing
the simulator/compiler invalidates all stale entries wholesale.  The
cache root is, in order of precedence:

1. ``$REPRO_CACHE_DIR``;
2. ``<repo root>/.repro-cache`` when running from a source checkout;
3. ``~/.cache/repro`` otherwise.

Writes are atomic (temp file + ``os.replace``), so concurrent workers
racing on the same key can never corrupt an entry; the last writer wins
with identical content.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import pathlib
import threading
import time

import repro
from repro.compiler import CompileResult, RegionReport
from repro.harness.bundle import bundle_from_dict, bundle_to_dict
from repro.harness.runner import RunResult

from repro.engine.jobs import JobSpec

_PACKAGE_DIR = pathlib.Path(repro.__file__).resolve().parent

#: Memoized fingerprints, keyed by package dir (one per process).
_FINGERPRINTS: dict[pathlib.Path, str] = {}


def code_fingerprint() -> str:
    """Hash of every Python source file under ``src/repro``.

    Any edit to the simulator, compiler, or models changes this value
    and thereby orphans all previously cached artifacts.
    """
    cached = _FINGERPRINTS.get(_PACKAGE_DIR)
    if cached is not None:
        return cached
    import hashlib

    digest = hashlib.sha256()
    for path in sorted(_PACKAGE_DIR.rglob("*.py")):
        digest.update(str(path.relative_to(_PACKAGE_DIR)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    _FINGERPRINTS[_PACKAGE_DIR] = value
    return value


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache root (see module docstring for precedence)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    repo_root = _PACKAGE_DIR.parent.parent
    if (repo_root / "pyproject.toml").exists():
        return repo_root / ".repro-cache"
    return pathlib.Path.home() / ".cache" / "repro"


# ---------------------------------------------------------------------
# RunResult (de)serialization
# ---------------------------------------------------------------------
#
# The payload schema is owned by the dataclasses themselves now
# (``RunResult.to_dict``/``from_dict`` and friends); these module-level
# names survive as the engine's public serialization entry points.


def result_to_dict(result: RunResult) -> dict:
    """Serialize a run summary (everything but the executable program)."""
    return result.to_dict()


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a :class:`RunResult` summary (``program=None``)."""
    return RunResult.from_dict(data)


# ---------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------


#: Process-wide counter making temp-file names unique *within* a
#: process: pid alone is not enough once the asyncio service layer has
#: several threads (or coalesced writers) storing under one pid.
_TMP_SEQ = itertools.count()

#: Reserved top-level key carrying each entry's payload checksum.
_CHECKSUM_KEY = "_sha256"


def _payload_checksum(data: dict) -> str:
    """Canonical-JSON SHA-256 of an entry payload (checksum key excluded)."""
    import hashlib

    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ArtifactCache:
    """On-disk store for run summaries and compiled-program bundles.

    Instances hold only a path and a fingerprint string, so they pickle
    cleanly into :mod:`repro.engine.pool` worker processes.

    Concurrency contract: any number of processes *and* threads may
    share one cache root.  Writers stage into a name unique per
    (pid, thread, sequence) and publish with an atomic ``os.replace``;
    readers treat missing/truncated entries as misses; maintenance
    (:meth:`stats`, :meth:`prune`, :meth:`clear`) tolerates entries
    vanishing underneath it.
    """

    def __init__(self, root: str | os.PathLike | None = None,
                 fingerprint: str | None = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()

    def _path(self, kind: str, key: str) -> pathlib.Path:
        return self.root / self.fingerprint[:16] / kind / f"{key}.json"

    # -- raw entries ---------------------------------------------------

    def load(self, kind: str, key: str) -> dict | None:
        """Read one entry; corrupt entries are a *miss-and-evict*.

        A missing file is a plain miss.  Anything else that cannot be
        served faithfully — truncated/garbled JSON, a non-object
        payload, a payload whose stored checksum no longer matches its
        content (bit rot, partial overwrite, a hostile filesystem) — is
        deleted on the spot and reported as a miss, so a corrupt entry
        can never be returned *or* poison every later probe of its key.
        Entries written before checksumming carry no checksum and are
        served as-is.
        """
        path = self._path(kind, key)
        try:
            text = path.read_text()
        except OSError:
            return None  # missing entry == miss
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:
            self._evict(path)   # truncated/garbled == miss-and-evict
            return None
        expected = data.pop(_CHECKSUM_KEY, None)
        if expected is not None and _payload_checksum(data) != expected:
            self._evict(path)   # wrong bytes == miss-and-evict
            return None
        return data

    #: Issue-facing alias: ``cache.get(kind, key)`` reads like a dict.
    get = load

    def store(self, kind: str, key: str, data: dict) -> None:
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.tmp{os.getpid()}-{threading.get_ident()}"
            f"-{next(_TMP_SEQ)}")
        try:
            tmp.write_text(json.dumps(
                {**data, _CHECKSUM_KEY: _payload_checksum(data)}))
            os.replace(tmp, path)
        except OSError:
            # Never leave a stage file behind on a failed publish; the
            # entry simply stays absent (a future probe re-misses).
            with contextlib.suppress(OSError):
                tmp.unlink()
            raise

    # -- typed helpers -------------------------------------------------

    def load_run(self, spec: JobSpec) -> dict | None:
        return self.load("run", spec.job_hash)

    def store_run(self, spec: JobSpec, payload: dict) -> None:
        self.store("run", spec.job_hash, payload)

    def load_compile(self, spec: JobSpec) -> CompileResult | None:
        data = self.load("compile", spec.compile_hash)
        if data is None:
            return None
        try:
            program = bundle_from_dict(data["bundle"],
                                       spec.options().fabric)
        except Exception:
            # Unreadable bundle == miss-and-evict, recompile; keeping
            # the entry would re-fail deserialization on every probe.
            self._evict(self._path("compile", spec.compile_hash))
            return None
        return CompileResult(
            program=program, ir_dump="",
            regions=[RegionReport.from_dict(r)
                     for r in data.get("regions", [])])

    def store_compile(self, spec: JobSpec, compiled: CompileResult) -> None:
        self.store("compile", spec.compile_hash, {
            "bundle": bundle_to_dict(compiled.program),
            "regions": [r.to_dict() for r in compiled.regions],
        })

    # -- maintenance ---------------------------------------------------

    def entries(self) -> list[pathlib.Path]:
        if not self.root.exists():
            return []
        return sorted(self.root.rglob("*.json"))

    def _survey(self) -> list[tuple[pathlib.Path, float, int]]:
        """(path, mtime, size) for every entry, tolerating racers.

        An entry deleted (or replaced) by a concurrent process between
        the directory walk and the ``stat`` simply drops out of the
        survey — maintenance never fails because the cache is live.
        """
        surveyed = []
        for path in self.entries():
            try:
                st = path.stat()
            except OSError:
                continue   # vanished underneath us
            surveyed.append((path, st.st_mtime, st.st_size))
        return surveyed

    def clear(self) -> int:
        """Delete every entry (all fingerprints); returns count removed."""
        removed = 0
        for path in self.entries():
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        return removed

    def stats(self) -> dict:
        """Byte-accounted census: entries/bytes in total and per kind.

        ``current`` covers entries under this cache's code fingerprint;
        ``stale_entries``/``stale_bytes`` count entries orphaned under
        other fingerprints (prime ``prune`` targets).
        """
        current_prefix = self.root / self.fingerprint[:16]
        kinds: dict[str, dict] = {}
        total_entries = total_bytes = 0
        stale_entries = stale_bytes = 0
        for path, _mtime, size in self._survey():
            total_entries += 1
            total_bytes += size
            if current_prefix in path.parents:
                kind = path.parent.name
                bucket = kinds.setdefault(kind,
                                          {"entries": 0, "bytes": 0})
                bucket["entries"] += 1
                bucket["bytes"] += size
            else:
                stale_entries += 1
                stale_bytes += size
        return {
            "root": str(self.root),
            "fingerprint": self.fingerprint,
            "entries": total_entries,
            "bytes": total_bytes,
            "kinds": {k: kinds[k] for k in sorted(kinds)},
            "stale_entries": stale_entries,
            "stale_bytes": stale_bytes,
        }

    def prune(self, max_age_days: float | None = None,
              max_bytes: int | None = None, *,
              now: float | None = None) -> dict:
        """Evict entries, LRU by mtime; returns removal accounting.

        Policy, in order:

        1. stage files abandoned by crashed writers (``*.tmp*`` older
           than one hour) are always swept;
        2. entries older than ``max_age_days`` are removed;
        3. if the surviving entries still exceed ``max_bytes``, the
           least recently *modified* are removed until they fit.

        A long-running service node calls this periodically (or from
        ``repro cache prune``) so the cache cannot grow unboundedly.
        Concurrent readers racing a pruned key see a plain miss.
        """
        now = time.time() if now is None else now
        removed = freed = 0

        if self.root.exists():
            for tmp in self.root.rglob("*.tmp*"):
                try:
                    if now - tmp.stat().st_mtime > 3600:
                        size = tmp.stat().st_size
                        tmp.unlink()
                        removed += 1
                        freed += size
                except OSError:
                    continue

        surveyed = self._survey()
        survivors = []
        for entry in surveyed:
            path, mtime, size = entry
            if max_age_days is not None \
                    and now - mtime > max_age_days * 86400.0:
                if self._evict(path):
                    removed += 1
                    freed += size
                continue
            survivors.append(entry)
        if max_bytes is not None:
            kept_bytes = sum(size for _p, _m, size in survivors)
            # Oldest first == least recently modified first.
            for path, _mtime, size in sorted(survivors,
                                             key=lambda e: e[1]):
                if kept_bytes <= max_bytes:
                    break
                if self._evict(path):
                    removed += 1
                    freed += size
                kept_bytes -= size
        stats = self.stats()
        return {
            "removed": removed,
            "freed_bytes": freed,
            "kept": stats["entries"],
            "kept_bytes": stats["bytes"],
        }

    @staticmethod
    def _evict(path: pathlib.Path) -> bool:
        try:
            path.unlink()
        except OSError:
            return False
        # Best-effort tidy of now-empty kind/fingerprint directories.
        parent = path.parent
        for _ in range(2):
            try:
                parent.rmdir()
            except OSError:
                break
            parent = parent.parent
        return True

    def describe(self) -> str:
        stats = self.stats()
        parts = [f"cache at {stats['root']} "
                 f"[code {self.fingerprint[:12]}]: "
                 f"{stats['entries']} entries, "
                 f"{stats['bytes'] / 1024:.1f} KiB"]
        for kind, bucket in stats["kinds"].items():
            parts.append(f"  {kind}: {bucket['entries']} entries, "
                         f"{bucket['bytes'] / 1024:.1f} KiB")
        if stats["stale_entries"]:
            parts.append(f"  stale (other code versions): "
                         f"{stats['stale_entries']} entries, "
                         f"{stats['stale_bytes'] / 1024:.1f} KiB")
        return "\n".join(parts)
