"""Persistent, content-addressed artifact cache.

Two kinds of entries, both JSON files on disk:

- ``run`` entries — finished :class:`repro.harness.RunResult` summaries
  (cycle counters, energy breakdown, correctness, region metadata),
  keyed by :attr:`JobSpec.job_hash`;
- ``compile`` entries — compiled program bundles
  (:mod:`repro.harness.bundle`) plus region reports, keyed by
  :attr:`JobSpec.compile_hash` (which includes the kernel source hash).

Every entry additionally lives under a *code-version fingerprint*
directory — a hash of every ``.py`` file in ``src/repro`` — so editing
the simulator/compiler invalidates all stale entries wholesale.  The
cache root is, in order of precedence:

1. ``$REPRO_CACHE_DIR``;
2. ``<repo root>/.repro-cache`` when running from a source checkout;
3. ``~/.cache/repro`` otherwise.

Writes are atomic (temp file + ``os.replace``), so concurrent workers
racing on the same key can never corrupt an entry; the last writer wins
with identical content.
"""

from __future__ import annotations

import json
import os
import pathlib

import repro
from repro.compiler import CompileResult, RegionReport
from repro.harness.bundle import bundle_from_dict, bundle_to_dict
from repro.harness.runner import RunResult

from repro.engine.jobs import JobSpec

_PACKAGE_DIR = pathlib.Path(repro.__file__).resolve().parent

#: Memoized fingerprints, keyed by package dir (one per process).
_FINGERPRINTS: dict[pathlib.Path, str] = {}


def code_fingerprint() -> str:
    """Hash of every Python source file under ``src/repro``.

    Any edit to the simulator, compiler, or models changes this value
    and thereby orphans all previously cached artifacts.
    """
    cached = _FINGERPRINTS.get(_PACKAGE_DIR)
    if cached is not None:
        return cached
    import hashlib

    digest = hashlib.sha256()
    for path in sorted(_PACKAGE_DIR.rglob("*.py")):
        digest.update(str(path.relative_to(_PACKAGE_DIR)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    _FINGERPRINTS[_PACKAGE_DIR] = value
    return value


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache root (see module docstring for precedence)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    repo_root = _PACKAGE_DIR.parent.parent
    if (repo_root / "pyproject.toml").exists():
        return repo_root / ".repro-cache"
    return pathlib.Path.home() / ".cache" / "repro"


# ---------------------------------------------------------------------
# RunResult (de)serialization
# ---------------------------------------------------------------------
#
# The payload schema is owned by the dataclasses themselves now
# (``RunResult.to_dict``/``from_dict`` and friends); these module-level
# names survive as the engine's public serialization entry points.


def result_to_dict(result: RunResult) -> dict:
    """Serialize a run summary (everything but the executable program)."""
    return result.to_dict()


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a :class:`RunResult` summary (``program=None``)."""
    return RunResult.from_dict(data)


# ---------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------


class ArtifactCache:
    """On-disk store for run summaries and compiled-program bundles.

    Instances hold only a path and a fingerprint string, so they pickle
    cleanly into :mod:`repro.engine.pool` worker processes.
    """

    def __init__(self, root: str | os.PathLike | None = None,
                 fingerprint: str | None = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()

    def _path(self, kind: str, key: str) -> pathlib.Path:
        return self.root / self.fingerprint[:16] / kind / f"{key}.json"

    # -- raw entries ---------------------------------------------------

    def load(self, kind: str, key: str) -> dict | None:
        path = self._path(kind, key)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # missing or truncated entry == miss

    def store(self, kind: str, key: str, data: dict) -> None:
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(data))
        os.replace(tmp, path)

    # -- typed helpers -------------------------------------------------

    def load_run(self, spec: JobSpec) -> dict | None:
        return self.load("run", spec.job_hash)

    def store_run(self, spec: JobSpec, payload: dict) -> None:
        self.store("run", spec.job_hash, payload)

    def load_compile(self, spec: JobSpec) -> CompileResult | None:
        data = self.load("compile", spec.compile_hash)
        if data is None:
            return None
        try:
            program = bundle_from_dict(data["bundle"],
                                       spec.options().fabric)
        except Exception:
            return None  # unreadable bundle == miss, recompile
        return CompileResult(
            program=program, ir_dump="",
            regions=[RegionReport.from_dict(r)
                     for r in data.get("regions", [])])

    def store_compile(self, spec: JobSpec, compiled: CompileResult) -> None:
        self.store("compile", spec.compile_hash, {
            "bundle": bundle_to_dict(compiled.program),
            "regions": [r.to_dict() for r in compiled.regions],
        })

    # -- maintenance ---------------------------------------------------

    def entries(self) -> list[pathlib.Path]:
        if not self.root.exists():
            return []
        return sorted(self.root.rglob("*.json"))

    def clear(self) -> int:
        """Delete every entry (all fingerprints); returns count removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def describe(self) -> str:
        entries = self.entries()
        total = sum(p.stat().st_size for p in entries)
        return (f"cache at {self.root} [code {self.fingerprint[:12]}]: "
                f"{len(entries)} entries, {total / 1024:.1f} KiB")
