"""Parallel sweep engine with a persistent artifact cache.

The substrate every design-space exploration in this repo runs on:

- :mod:`repro.engine.jobs` — declarative :class:`JobSpec` with a stable
  content hash (plus deprecated cartesian builder shims);
- :mod:`repro.engine.sweeps` — first-class :class:`SweepSpec` sweep
  descriptions with a stable ``sweep_hash``, consumed by ``repro
  sweep``, :func:`run_jobs` and the service's ``POST /v1/sweep``;
- :mod:`repro.engine.cache` — persistent, content-addressed store for
  compiled-program bundles and finished run summaries, invalidated by a
  code-version fingerprint of ``src/repro``;
- :mod:`repro.engine.pool` — serial or process-pool execution with
  per-job timeout, bounded retry on worker crashes, and dedup of
  identical specs;
- :mod:`repro.engine.report` — per-job records and sweep accounting
  (cache hits/misses, wall time, failures).

Typical use::

    from repro.engine import ArtifactCache, run_comparisons

    comps, report = run_comparisons(
        ["saxpy", "mm"], scale="tiny", jobs=4, cache=ArtifactCache())
    print(report.summary())
"""

from repro.engine.cache import (
    ArtifactCache,
    code_fingerprint,
    default_cache_dir,
    result_from_dict,
    result_to_dict,
)
from repro.engine.jobs import (
    SPEC_VERSION,
    JobSpec,
    comparison_jobs,
    suite_jobs,
    sweep,
)
from repro.engine.sweeps import SWEEP_VERSION, SweepSpec
from repro.engine.pool import execute_job, run_comparisons, run_jobs
from repro.engine.report import (
    DUPLICATE,
    EXECUTED,
    FAILED,
    HIT,
    EngineFailure,
    EngineReport,
    JobRecord,
)

__all__ = [
    "ArtifactCache",
    "DUPLICATE",
    "EXECUTED",
    "EngineFailure",
    "EngineReport",
    "FAILED",
    "HIT",
    "JobRecord",
    "JobSpec",
    "SPEC_VERSION",
    "SWEEP_VERSION",
    "SweepSpec",
    "code_fingerprint",
    "comparison_jobs",
    "default_cache_dir",
    "execute_job",
    "result_from_dict",
    "result_to_dict",
    "run_comparisons",
    "run_jobs",
    "suite_jobs",
    "sweep",
]
