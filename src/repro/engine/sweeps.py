"""First-class sweep descriptions.

A :class:`SweepSpec` is the declarative form of a design-space sweep:
the workloads, the modes, a ``base`` of fixed non-default knob values,
and ordered ``axes`` mapping :class:`~repro.engine.jobs.JobSpec` field
names to the values each axis takes.  It replaces the loose builder
functions (``sweep`` / ``comparison_jobs`` / ``suite_jobs``, now thin
deprecated shims) with one frozen, hashable, serializable object that
every sweep consumer shares — ``repro sweep``, :func:`run_jobs`, and
the service's ``POST /v1/sweep``.

Guarantees:

- :meth:`jobs` expands in exactly the historical builder order
  (workload outermost, then mode, then the cartesian product of the
  axes in declaration order), so job lists — and therefore engine
  reports, CLI tables and cached artifacts — are unchanged.
- :attr:`sweep_hash` is a stable content hash of the canonical form;
  two spellings of the same sweep (list vs tuple values, dict vs pair
  tuples) hash identically.
- :meth:`to_dict` / :meth:`from_dict` round-trip losslessly, which is
  what the service transports.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass

from repro.errors import WorkloadError

from repro.engine.jobs import _FIELD_NAMES, JobSpec

#: Bump when SweepSpec canonical form changes incompatibly.
SWEEP_VERSION = "sweepspec-v1"

_MODES = ("scalar", "dyser")


def _freeze(value):
    """Normalize a knob value: lists/tuples become tuples, recursively."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value):
    """JSON-friendly rendering of a frozen knob value."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class SweepSpec:
    """One declarative design-space sweep.

    ``base`` holds fixed non-default knob values as sorted ``(name,
    value)`` pairs; ``axes`` holds ``(name, values)`` pairs whose order
    *is* the expansion order.  Both accept plain dicts at construction
    and are frozen into tuples.
    """

    workloads: tuple = ()
    modes: tuple = ("dyser",)
    base: tuple = ()
    axes: tuple = ()

    def __post_init__(self) -> None:
        workloads = tuple(str(w) for w in self.workloads)
        if not workloads:
            raise WorkloadError("SweepSpec needs at least one workload")
        modes = tuple(str(m) for m in self.modes)
        for mode in modes:
            if mode not in _MODES:
                raise WorkloadError(f"unknown mode {mode!r}")
        if not modes:
            raise WorkloadError("SweepSpec needs at least one mode")
        base = self.base
        if isinstance(base, dict):
            base = base.items()
        base = tuple(sorted((str(k), _freeze(v)) for k, v in base))
        axes = self.axes
        if isinstance(axes, dict):
            axes = axes.items()
        axes = tuple((str(k), tuple(_freeze(v) for v in vs))
                     for k, vs in axes)
        seen: set[str] = set()
        for name, values in axes:
            if not values:
                raise WorkloadError(f"sweep axis {name!r} has no values")
            if name in seen:
                raise WorkloadError(f"duplicate sweep axis {name!r}")
            seen.add(name)
        for name, _ in itertools.chain(base, axes):
            if name not in _FIELD_NAMES or name in ("workload", "mode"):
                raise WorkloadError(f"unknown JobSpec field {name!r}")
        object.__setattr__(self, "workloads", workloads)
        object.__setattr__(self, "modes", modes)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "axes", axes)

    # -- expansion -----------------------------------------------------

    def __len__(self) -> int:
        n = len(self.workloads) * len(self.modes)
        for _name, values in self.axes:
            n *= len(values)
        return n

    def jobs(self) -> list[JobSpec]:
        """Expand to the full :class:`JobSpec` list.

        Order is the historical builder order — workload outermost,
        then mode, then the cartesian product of the axes in
        declaration order — so job hashes and report indices line up
        with what earlier releases cached.
        """
        base = dict(self.base)
        axis_names = [name for name, _ in self.axes]
        axis_values = [values for _, values in self.axes]
        specs = []
        for workload in self.workloads:
            for mode in self.modes:
                for values in itertools.product(*axis_values):
                    overrides = dict(zip(axis_names, values,
                                         strict=True))
                    specs.append(JobSpec(workload=workload, mode=mode,
                                         **{**base, **overrides}))
        return specs

    # -- identity ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe rendering; :meth:`from_dict` round-trips it."""
        return {
            "version": SWEEP_VERSION,
            "workloads": list(self.workloads),
            "modes": list(self.modes),
            "base": {name: _thaw(value) for name, value in self.base},
            "axes": [[name, [_thaw(v) for v in values]]
                     for name, values in self.axes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise WorkloadError("sweep spec must be a JSON object")
        version = data.get("version", SWEEP_VERSION)
        if version != SWEEP_VERSION:
            raise WorkloadError(
                f"unsupported sweep spec version {version!r}")
        axes = data.get("axes", [])
        axes = (axes.items() if isinstance(axes, dict)
                else [tuple(pair) for pair in axes])
        return cls(
            workloads=tuple(data.get("workloads", ())),
            modes=tuple(data.get("modes", ("dyser",))),
            base=dict(data.get("base", {})),
            axes=tuple(axes),
        )

    @property
    def sweep_hash(self) -> str:
        """Stable content hash of the canonical sweep (hex sha256)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        axes = ", ".join(f"{name}x{len(values)}"
                         for name, values in self.axes) or "no axes"
        return (f"sweep[{len(self)}] over {len(self.workloads)} "
                f"workloads ({'+'.join(self.modes)}; {axes})")

    # -- common shapes -------------------------------------------------

    @classmethod
    def comparison(cls, workloads, scale: str = "small", seed: int = 7,
                   **knobs) -> "SweepSpec":
        """The scalar-vs-DySER pairing historically built by
        ``comparison_jobs``: both modes per workload, no axes."""
        return cls(workloads=tuple(workloads),
                   modes=("scalar", "dyser"),
                   base={"scale": scale, "seed": seed, **knobs})

    @classmethod
    def suite(cls, scale: str = "small", seed: int = 7) -> "SweepSpec":
        """Scalar+DySER across the whole registered workload suite."""
        from repro.workloads import SUITE

        return cls.comparison(sorted(SUITE), scale=scale, seed=seed)
