"""Engine run accounting: per-job records and the sweep-level report.

A sweep never aborts because one point failed; failures are recorded in
the :class:`EngineReport` and surfaced at the end, the way a nightly
design-space exploration wants it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

from repro.engine.jobs import JobSpec

#: Job statuses.
HIT = "hit"            # served from the persistent result cache
EXECUTED = "executed"  # compiled/simulated this run
DUPLICATE = "duplicate"  # identical spec earlier in the sweep; shared
FAILED = "failed"      # exhausted retries (error recorded)
REJECTED = "rejected"  # failed pre-flight lint; never dispatched


class EngineFailure(ReproError):
    """Raised by :meth:`EngineReport.raise_on_failure`."""


@dataclass
class JobRecord:
    """Outcome of one submitted job."""

    spec: JobSpec
    status: str = "pending"
    wall_s: float = 0.0
    attempts: int = 0
    error: str | None = None
    #: Pre-flight lint findings (:class:`repro.analysis.diagnostics.
    #: Diagnostic`); populated for REJECTED jobs, and for jobs whose
    #: spec linted with warnings but still ran.
    diagnostics: list = field(default_factory=list)
    #: Predicted cycle cost from the static perf analyzer; populated
    #: by the pooled pre-flight (longest-first dispatch), None when the
    #: estimate was skipped or unavailable.
    cost: int | None = None


@dataclass
class EngineReport:
    """What a sweep did: results, cache traffic, failures, wall time."""

    jobs: int = 1
    records: list[JobRecord] = field(default_factory=list)
    #: Aligned with the submitted spec list; ``None`` for failed jobs.
    results: list = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.status == HIT)

    @property
    def cache_misses(self) -> int:
        # Rejected jobs never probe the cache, so they are not misses.
        return self.executed + sum(
            1 for r in self.records if r.status == FAILED)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records if r.status == EXECUTED)

    @property
    def duplicates(self) -> int:
        return sum(1 for r in self.records if r.status == DUPLICATE)

    @property
    def failures(self) -> list[JobRecord]:
        """Jobs that produced no result: FAILED or lint-REJECTED."""
        return [r for r in self.records
                if r.status in (FAILED, REJECTED)]

    @property
    def rejected(self) -> list[JobRecord]:
        return [r for r in self.records if r.status == REJECTED]

    def result_for(self, spec: JobSpec):
        """The result of the first record matching ``spec``'s hash."""
        want = spec.job_hash
        for record, result in zip(self.records, self.results,
                                  strict=True):
            if record.spec.job_hash == want:
                return result
        raise KeyError(spec.describe())

    def summary(self) -> str:
        parts = [
            f"{len(self.records)} jobs @ {self.jobs} worker"
            f"{'s' if self.jobs != 1 else ''}",
            f"{self.cache_hits} cache hits",
            f"{self.executed} executed",
        ]
        if self.duplicates:
            parts.append(f"{self.duplicates} deduplicated")
        if self.rejected:
            parts.append(f"{len(self.rejected)} REJECTED by lint")
        failed = sum(1 for r in self.records if r.status == FAILED)
        if failed:
            parts.append(f"{failed} FAILED")
        parts.append(f"{self.wall_s:.2f}s wall")
        return "engine: " + ", ".join(parts)

    def raise_on_failure(self) -> None:
        if not self.failures:
            return
        lines = [f"{len(self.failures)} job(s) failed:"]
        lines += [
            f"  {r.spec.describe()}: {r.error} "
            f"(after {r.attempts} attempt{'s' if r.attempts != 1 else ''})"
            for r in self.failures
        ]
        raise EngineFailure("\n".join(lines))
