"""Declarative job specifications and sweep builders.

A :class:`JobSpec` names one (workload, mode, scale, seed) point in the
design space together with every knob that can change its outcome:
compiler options, fabric geometry, FIFO depths, configuration-cache
capacity, host-core port width, and energy-model overrides.  It is a
frozen dataclass of plain values, so it pickles cleanly into worker
processes and carries a stable content hash that keys the persistent
artifact cache (:mod:`repro.engine.cache`).

Sweep builders expand cartesian grids over those knobs — the E9/E10
axes (geometry 2x2..8x8, unroll, vectorize, port width, FIFO depth,
config-cache capacity) and anything else a future experiment sweeps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import MISSING, asdict, dataclass, fields, replace

from repro.compiler import CompilerOptions
from repro.cpu import CoreConfig
from repro.dyser import DyserTimingParams, Fabric, FabricGeometry
from repro.dyser.config_cache import ConfigCacheParams
from repro.energy import EnergyParams
from repro.errors import WorkloadError

#: Bump when JobSpec semantics change in a way that must invalidate
#: previously cached results even though field values look identical.
SPEC_VERSION = "jobspec-v1"

#: Fields that cannot affect a scalar-mode run.  They are normalized to
#: their defaults in the canonical (hashed) form so the scalar baseline
#: of a DySER knob sweep maps to one cache entry instead of many.
_DYSER_ONLY_FIELDS = (
    "geometry",
    "min_region_ops",
    "unroll",
    "vectorize",
    "reassociate",
    "pipeline_invocations",
    "if_convert",
    "max_region_ops",
    "input_fifo_depth",
    "output_fifo_depth",
    "initiation_interval",
    "config_cache_capacity",
    "vector_port_words_per_cycle",
)

#: Fields that determine the compiled artifact (independent of the
#: simulated run's scale/seed/timing knobs).
_COMPILE_FIELDS = (
    "workload",
    "mode",
    "geometry",
    "min_region_ops",
    "unroll",
    "vectorize",
    "reassociate",
    "pipeline_invocations",
    "if_convert",
    "max_region_ops",
)


@dataclass(frozen=True)
class JobSpec:
    """One fully specified experiment point."""

    workload: str
    mode: str = "dyser"
    scale: str = "small"
    seed: int = 7

    # Compiler knobs (mirror repro.compiler.CompilerOptions defaults).
    geometry: tuple = (8, 8)
    min_region_ops: int = 2
    unroll: int = 8
    vectorize: bool = True
    reassociate: bool = True
    pipeline_invocations: bool = True
    if_convert: bool = True
    max_region_ops: int | None = None

    # Fabric timing knobs (repro.dyser.DyserTimingParams).
    input_fifo_depth: int = 4
    output_fifo_depth: int = 4
    initiation_interval: int = 1

    # Configuration cache (repro.dyser.config_cache.ConfigCacheParams).
    config_cache_capacity: int = 4

    # Host-core integration knobs.
    vector_port_words_per_cycle: int = 2

    # Energy model overrides, as a sorted tuple of (field, value).
    energy_overrides: tuple = ()

    memory_bytes: int = 1 << 22

    #: Simulation backend (see :mod:`repro.harness.backends`).  By the
    #: parity contract the backend never changes a run's *outcome*, so
    #: it is deliberately excluded from :meth:`canonical_dict` and
    #: therefore from :attr:`job_hash` — results computed on either
    #: backend share one artifact-cache entry.
    backend: str = "fast"

    def __post_init__(self) -> None:
        if self.mode not in ("scalar", "dyser"):
            raise WorkloadError(f"unknown mode {self.mode!r}")
        from repro.harness.backends import get_backend

        get_backend(self.backend)   # raises WorkloadError if unknown
        geometry = tuple(int(v) for v in self.geometry)
        if len(geometry) != 2 or min(geometry) < 1:
            raise WorkloadError(f"bad geometry {self.geometry!r}")
        object.__setattr__(self, "geometry", geometry)
        # Normalize knob types so e.g. vectorize=1 and vectorize=True
        # produce the same canonical form and content hash.
        for name in ("vectorize", "reassociate", "pipeline_invocations",
                     "if_convert"):
            object.__setattr__(self, name, bool(getattr(self, name)))
        for name in ("seed", "min_region_ops", "unroll",
                     "input_fifo_depth", "output_fifo_depth",
                     "initiation_interval", "config_cache_capacity",
                     "vector_port_words_per_cycle", "memory_bytes"):
            object.__setattr__(self, name, int(getattr(self, name)))
        overrides = tuple(sorted(
            (str(k), v) for k, v in tuple(self.energy_overrides)))
        object.__setattr__(self, "energy_overrides", overrides)

    # -- hashing -------------------------------------------------------

    def canonical_dict(self) -> dict:
        """Field dict with dyser-only knobs normalized away for scalar.

        ``backend`` is removed: both registered backends are
        cycle-exact-equal (enforced by :mod:`repro.harness.parity`), so
        the backend choice cannot change a cached result.
        """
        data = asdict(self)
        data.pop("backend")
        data["version"] = SPEC_VERSION
        if self.mode == "scalar":
            defaults = _FIELD_DEFAULTS
            for name in _DYSER_ONLY_FIELDS:
                data[name] = defaults[name]
        data["geometry"] = list(data["geometry"])
        data["energy_overrides"] = [list(p) for p in data["energy_overrides"]]
        return data

    @property
    def job_hash(self) -> str:
        """Stable content hash of the canonical spec (hex sha256)."""
        blob = json.dumps(self.canonical_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @property
    def compile_hash(self) -> str:
        """Hash of everything that determines the compiled artifact.

        Includes a hash of the workload's *source text* so an edited
        kernel can never be served a stale compiled program.
        """
        from repro.harness.runner import source_hash
        from repro.workloads import get

        data = self.canonical_dict()
        data = {k: data[k] for k in _COMPILE_FIELDS}
        data["version"] = SPEC_VERSION
        data["source"] = source_hash(get(self.workload).source)
        blob = json.dumps(data, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- parameter-object construction ---------------------------------

    def options(self) -> CompilerOptions:
        return CompilerOptions(
            fabric=Fabric(FabricGeometry(*self.geometry)),
            min_region_ops=self.min_region_ops,
            unroll=self.unroll,
            vectorize=self.vectorize,
            reassociate=self.reassociate,
            pipeline_invocations=self.pipeline_invocations,
            if_convert=self.if_convert,
            max_region_ops=self.max_region_ops,
        )

    def timing(self) -> DyserTimingParams:
        return DyserTimingParams(
            input_fifo_depth=self.input_fifo_depth,
            output_fifo_depth=self.output_fifo_depth,
            initiation_interval=self.initiation_interval,
        )

    def cache_params(self) -> ConfigCacheParams:
        return ConfigCacheParams(capacity=self.config_cache_capacity)

    def core_config(self) -> CoreConfig:
        return CoreConfig(
            has_dyser=(self.mode == "dyser"),
            vector_port_words_per_cycle=self.vector_port_words_per_cycle,
        )

    def energy_params(self) -> EnergyParams:
        params = EnergyParams(dyser_present=(self.mode == "dyser"))
        if self.energy_overrides:
            params = replace(params, **dict(self.energy_overrides))
        return params

    # -- RunConfig bridge ----------------------------------------------

    def to_run_config(self, trace=None):
        """The :class:`repro.harness.RunConfig` this spec describes.

        ``trace`` (a :class:`repro.obs.events.TraceOptions`) rides along
        without affecting :attr:`job_hash` — observability never changes
        a run's outcome, so traced and untraced runs share cache keys.
        The ``backend`` transfers too (also hash-excluded, by the parity
        contract).
        """
        from repro.harness.config import RunConfig
        from repro.obs.events import TraceOptions

        return RunConfig(
            workload=self.workload,
            mode=self.mode,
            scale=self.scale,
            seed=self.seed,
            options=self.options(),
            core_config=self.core_config(),
            timing=self.timing(),
            cache_params=self.cache_params(),
            energy_params=self.energy_params(),
            memory_bytes=self.memory_bytes,
            trace=trace or TraceOptions(),
            backend=self.backend,
        )

    @classmethod
    def from_run_config(cls, config) -> "JobSpec":
        """Recover the spec a :meth:`to_run_config` output came from.

        Lossless for configs built by :meth:`to_run_config` (round-trip
        preserves :attr:`job_hash`); configs with ``None`` parameter
        objects map to the corresponding field defaults, mirroring how
        the harness substitutes defaults at execution time.
        """
        from repro.energy import EnergyParams
        from dataclasses import fields as dc_fields

        options = config.options
        timing = config.timing
        cache_params = config.cache_params
        core_config = config.core_config
        data: dict = {
            "workload": config.workload,
            "mode": config.mode,
            "scale": config.scale,
            "seed": config.seed,
            "memory_bytes": config.memory_bytes,
            "backend": config.backend,
        }
        if options is not None:
            g = options.fabric.geometry
            data.update(
                geometry=(g.width, g.height),
                min_region_ops=options.min_region_ops,
                unroll=options.unroll,
                vectorize=options.vectorize,
                reassociate=options.reassociate,
                pipeline_invocations=options.pipeline_invocations,
                if_convert=options.if_convert,
                max_region_ops=options.max_region_ops,
            )
        if timing is not None:
            data.update(
                input_fifo_depth=timing.input_fifo_depth,
                output_fifo_depth=timing.output_fifo_depth,
                initiation_interval=timing.initiation_interval,
            )
        if cache_params is not None:
            data["config_cache_capacity"] = cache_params.capacity
        if core_config is not None:
            data["vector_port_words_per_cycle"] = (
                core_config.vector_port_words_per_cycle)
        if config.energy_params is not None:
            baseline = EnergyParams(
                dyser_present=(config.mode == "dyser"))
            overrides = tuple(
                (f.name, getattr(config.energy_params, f.name))
                for f in dc_fields(EnergyParams)
                if f.name != "dyser_present"
                and getattr(config.energy_params, f.name)
                != getattr(baseline, f.name))
            data["energy_overrides"] = overrides
        return cls(**data)

    def describe(self) -> str:
        w, h = self.geometry
        return (f"{self.workload}/{self.mode}@{self.scale} "
                f"g{w}x{h} u{self.unroll} "
                f"v{int(self.vectorize)} cc{self.config_cache_capacity}")


_FIELD_DEFAULTS = {
    f.name: f.default for f in fields(JobSpec) if f.default is not MISSING
}
_FIELD_NAMES = frozenset(f.name for f in fields(JobSpec))


# -- deprecated builder shims ------------------------------------------
#
# The cartesian builders grew into repro.engine.sweeps.SweepSpec — a
# frozen, hashable, serializable sweep description shared by the CLI,
# run_jobs and the service.  These shims expand through SweepSpec (so
# job order and hashes are bit-identical to what they always produced)
# and warn so callers migrate.


def sweep(workloads, modes=("dyser",), base: dict | None = None,
          **axes) -> list[JobSpec]:
    """Deprecated: build a :class:`~repro.engine.sweeps.SweepSpec` and
    call :meth:`~repro.engine.sweeps.SweepSpec.jobs` instead."""
    import warnings

    from repro.engine.sweeps import SweepSpec

    warnings.warn(
        "repro.engine.sweep() is deprecated; use "
        "SweepSpec(workloads=..., modes=..., base=..., axes=...).jobs()",
        DeprecationWarning, stacklevel=2)
    return SweepSpec(workloads=tuple(workloads), modes=tuple(modes),
                     base=dict(base or {}),
                     axes=tuple((name, tuple(values))
                                for name, values in axes.items())).jobs()


def comparison_jobs(workloads, scale: str = "small", seed: int = 7,
                    **knobs) -> list[JobSpec]:
    """Deprecated: use
    :meth:`~repro.engine.sweeps.SweepSpec.comparison`."""
    import warnings

    from repro.engine.sweeps import SweepSpec

    warnings.warn(
        "repro.engine.comparison_jobs() is deprecated; use "
        "SweepSpec.comparison(workloads, ...).jobs()",
        DeprecationWarning, stacklevel=2)
    return SweepSpec.comparison(workloads, scale=scale, seed=seed,
                                **knobs).jobs()


def suite_jobs(scale: str = "small", seed: int = 7) -> list[JobSpec]:
    """Deprecated: use :meth:`~repro.engine.sweeps.SweepSpec.suite`."""
    import warnings

    from repro.engine.sweeps import SweepSpec

    warnings.warn(
        "repro.engine.suite_jobs() is deprecated; use "
        "SweepSpec.suite(...).jobs()",
        DeprecationWarning, stacklevel=2)
    return SweepSpec.suite(scale=scale, seed=seed).jobs()
