"""Job execution: serial fallback and a fault-tolerant process pool.

:func:`run_jobs` takes a list of :class:`JobSpec`, consults the
persistent :class:`~repro.engine.cache.ArtifactCache`, deduplicates
identical specs, and executes the remaining jobs either in-process
(``jobs=1`` — byte-identical to the historical serial paths) or across
a ``ProcessPoolExecutor`` with per-job timeout and bounded retry on
worker crashes.  One failed design point never aborts the sweep; it is
recorded in the returned :class:`~repro.engine.report.EngineReport`.

The worker contract is a picklable callable ``worker(spec, cache) ->
payload dict`` (see :func:`result_to_dict`); tests inject failing or
sleeping workers to exercise the retry/timeout machinery.
"""

from __future__ import annotations

import contextlib
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from repro.harness.runner import Comparison, RunResult, run_workload
from repro.obs.events import maybe_span

from repro.engine.cache import ArtifactCache, result_from_dict, result_to_dict
from repro.engine.jobs import JobSpec
from repro.engine.sweeps import SweepSpec
from repro.engine.report import (
    DUPLICATE,
    EXECUTED,
    FAILED,
    HIT,
    REJECTED,
    EngineReport,
    JobRecord,
)


def execute_job(spec: JobSpec, cache: ArtifactCache | None = None,
                trace=None) -> RunResult:
    """Run one job, reusing a cached compiled program when available.

    ``trace`` (a :class:`repro.obs.events.TraceOptions`) enables the
    structured event stream for this execution; tracing bypasses the
    compiled-artifact reuse so compiler passes appear in the timeline.
    """
    traced = trace is not None and trace.enabled
    compiled = (cache.load_compile(spec)
                if cache is not None and not traced else None)
    had_artifact = compiled is not None
    result = run_workload(spec.to_run_config(trace=trace),
                          compiled=compiled)
    if cache is not None and not had_artifact:
        cache.store_compile(spec, result.compile_result)
    return result


def _worker(spec: JobSpec, cache: ArtifactCache | None = None) -> dict:
    """Default worker: execute and return a serialized run summary."""
    return result_to_dict(execute_job(spec, cache))


#: Marker key of a per-point failure inside a batch worker's payload
#: list; its value is the formatted error string a solo worker raise
#: would have produced.
_BATCH_FAILED = "__batch_failed__"


def _batch_worker(specs, cache: ArtifactCache | None = None) -> list:
    """Run one lane of ``batched``-backend specs in lockstep.

    Returns one entry per spec: either the serialized run summary —
    byte-identical to what :func:`_worker` produces for the same spec,
    by the batched parity contract — or ``{_BATCH_FAILED: "..."}``
    carrying the error string the solo path would have recorded.
    Compiled artifacts are reused from / stored into ``cache`` exactly
    like :func:`execute_job` (one compile per lane).
    """
    from repro.harness.batch import execute_batch_group

    compiled = cache.load_compile(specs[0]) if cache is not None else None
    stored = compiled is not None
    outcomes = execute_batch_group(
        [spec.to_run_config() for spec in specs], compiled=compiled)
    payloads = []
    for spec, outcome in zip(specs, outcomes, strict=True):
        if outcome.error is not None:
            payloads.append({_BATCH_FAILED:
                             f"{type(outcome.error).__name__}: "
                             f"{outcome.error}"})
            continue
        if cache is not None and not stored:
            cache.store_compile(spec, outcome.result.compile_result)
            stored = True
        payloads.append(result_to_dict(outcome.result))
    return payloads


def _plan_job_batches(specs, pending, costs=None):
    """Split pending indices into lockstep lanes and leftovers.

    Only ``backend="batched"`` specs batch, grouped by the harness's
    :func:`~repro.harness.batch.lane_key` over their expanded run
    configs — the same planner the direct API uses, so engine batching
    can never group what the harness would refuse.  Lanes need at
    least two members; everything else stays on the solo path.

    ``costs`` (index → predicted cycles, from the static perf
    analyzer) orders lanes and leftovers longest-first for better pool
    utilization; with no (or incomplete) cost data the historical
    first-index order is preserved.
    """
    from repro.harness.batch import lane_key

    lanes: dict[tuple, list[int]] = {}
    rest: list[int] = []
    for i in pending:
        if specs[i].backend != "batched":
            rest.append(i)
            continue
        lanes.setdefault(lane_key(specs[i].to_run_config()), []).append(i)
    groups = []
    for members in lanes.values():
        if len(members) >= 2:
            groups.append(members)
        else:
            rest.extend(members)
    if costs and all(costs.get(i) is not None for i in pending):
        # A lockstep lane's wall time tracks its slowest member.
        groups.sort(key=lambda g: (-max(costs[i] for i in g), g[0]))
        rest.sort(key=lambda i: (-costs[i], i))
    else:
        groups.sort(key=lambda g: g[0])
        rest.sort()
    return groups, rest


def _notify(progress, record) -> None:
    """Fire a progress callback; a broken observer never kills a run."""
    if progress is None:
        return
    with contextlib.suppress(Exception):
        progress(record)


def _finish_batch(members, payloads, specs, records, results, cache,
                  wall_s, progress=None) -> None:
    """Record one batch group's payload list onto its member jobs."""
    for i, payload in zip(members, payloads, strict=False):
        records[i].attempts += 1
        records[i].wall_s = wall_s
        if _BATCH_FAILED in payload:
            records[i].status = FAILED
            records[i].error = payload[_BATCH_FAILED]
        else:
            _finish(i, payload, specs, records, results, cache)
        _notify(progress, records[i])


def _run_batches(specs, groups, records, results, cache, jobs, timeout,
                 events=None, progress=None) -> list[int]:
    """Execute lockstep lanes; returns indices needing solo retry.

    A group whose worker call fails outright (crash, timeout, decode
    error at the lane level) is not retried as a lane — its members
    are handed back for the ordinary solo path, which has its own
    retry budget and is always parity-safe.
    """
    leftovers: list[int] = []
    if jobs > 1 and len(groups) > 1:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(groups)))
        futures = {}
        starts = {}
        for members in groups:
            starts[members[0]] = time.perf_counter()
            futures[pool.submit(
                _batch_worker, [specs[i] for i in members], cache)] = members
        timed_out = False
        for future, members in futures.items():
            try:
                payloads = future.result(timeout=timeout)
            except FutureTimeout:
                timed_out = True
                future.cancel()
                leftovers.extend(members)
                continue
            except Exception:  # noqa: BLE001 — lane falls back to solo
                leftovers.extend(members)
                continue
            _finish_batch(members, payloads, specs, records, results,
                          cache, time.perf_counter() - starts[members[0]],
                          progress)
        pool.shutdown(wait=not timed_out, cancel_futures=True)
        if timed_out:
            for proc in getattr(pool, "_processes", None) or {}:
                with contextlib.suppress(Exception):  # pragma: no cover
                    pool._processes[proc].terminate()
        return leftovers
    for members in groups:
        t0 = time.perf_counter()
        with maybe_span(events, f"batch[{len(members)}] "
                                f"{specs[members[0]].describe()}",
                        "engine.batch") as info:
            try:
                payloads = _batch_worker([specs[i] for i in members],
                                         cache)
            except Exception:  # noqa: BLE001 — lane falls back to solo
                info["status"] = "fallback"
                leftovers.extend(members)
                continue
            info["status"] = "executed"
        _finish_batch(members, payloads, specs, records, results, cache,
                      time.perf_counter() - t0, progress)
    return leftovers


def run_jobs(
    specs: list[JobSpec] | SweepSpec,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    timeout: float | None = None,
    retries: int = 1,
    worker=None,
    events=None,
    progress=None,
) -> EngineReport:
    """Execute ``specs``; returns a report with results aligned to them.

    ``specs`` is a list of :class:`JobSpec` or a :class:`SweepSpec`
    (expanded via :meth:`SweepSpec.jobs`, in its documented order).

    ``jobs=1`` runs serially in-process (no pool, fully deterministic);
    ``jobs>1`` fans out over worker processes.  ``timeout`` (seconds,
    per job) and crash recovery apply to the pooled path; a job is
    retried at most ``retries`` times before being recorded as FAILED.

    Cache-miss specs with ``backend="batched"`` are grouped by lane
    (same program, same functional knobs) and dispatched to the
    lockstep :func:`_batch_worker` before the solo paths run; their
    cached payloads are byte-identical to solo runs, and a lane that
    fails wholesale falls back to the solo path transparently.
    Batching only applies with the default worker — an injected
    ``worker`` sees every job individually, as before.

    ``events`` (an :class:`repro.obs.events.EventStream` or None)
    records the job lifecycle — cache hits, dedups, executions and
    failures — as wall-clock events for the timeline exporter.

    ``progress`` (callable or None) fires once per job as it reaches a
    terminal status, with its :class:`~repro.engine.report.JobRecord`
    — the service layer streams these as live progress for async jobs.
    Callback exceptions are swallowed; observation never aborts work.
    """
    from repro.analysis.speclint import lint_spec

    if isinstance(specs, SweepSpec):
        specs = specs.jobs()
    batching = worker is None
    worker = worker or _worker
    started = time.perf_counter()
    n = len(specs)
    records = [JobRecord(spec=spec) for spec in specs]
    results: list = [None] * n

    def mark(name: str, spec: JobSpec) -> None:
        if events is not None:
            events.instant(name, "engine.job",
                           time.perf_counter() * 1e6, domain="wall",
                           spec=spec.describe())

    # Pre-flight lint (once per unique hash): an illegal spec becomes a
    # REJECTED record carrying its diagnostics instead of burning a
    # worker slot (or a timeout) discovering the problem dynamically.
    lint_by_hash: dict[str, object] = {}

    # Cache probe + dedup (first occurrence of a hash is the primary).
    primary: dict[str, int] = {}
    dup_of: dict[int, int] = {}
    pending: list[int] = []
    for i, spec in enumerate(specs):
        h = spec.job_hash
        lint = lint_by_hash.get(h)
        if lint is None:
            lint = lint_by_hash[h] = lint_spec(spec)
        if lint.diagnostics:
            records[i].diagnostics = list(lint.diagnostics)
        if not lint.ok:
            records[i].status = REJECTED
            records[i].error = "; ".join(
                f"{d.code}: {d.message}" for d in lint.errors)
            mark("job_rejected", spec)
            _notify(progress, records[i])
            continue
        if h in primary:
            dup_of[i] = primary[h]
            records[i].status = DUPLICATE
            mark("job_duplicate", spec)
            _notify(progress, records[i])
            continue
        primary[h] = i
        payload = cache.load_run(spec) if cache is not None else None
        if payload is not None:
            # A stale/unreadable entry falls through as a miss.
            with contextlib.suppress(KeyError, ValueError):
                results[i] = result_from_dict(payload)
                records[i].status = HIT
                mark("job_cache_hit", spec)
                _notify(progress, records[i])
                continue
        pending.append(i)

    # Cost pre-flight: with real parallelism ahead, predict each
    # pending job's cycle cost statically (memoized per hash; the
    # compile is shared with the run via the harness memo) and dispatch
    # longest-first — the classic LPT heuristic.  Serial runs skip it:
    # ordering cannot change their wall time.
    costs: dict[int, int | None] = {}
    if len(pending) > 1 and jobs > 1:
        from repro.analysis.perf import estimate_job_cost

        for i in pending:
            records[i].cost = costs[i] = estimate_job_cost(specs[i])

    if pending and batching:
        groups, pending = _plan_job_batches(specs, pending, costs)
        if groups:
            pending = sorted(pending + _run_batches(
                specs, groups, records, results, cache, jobs, timeout,
                events, progress))

    if pending and costs and all(costs.get(i) is not None
                                 for i in pending):
        pending = sorted(pending, key=lambda i: (-costs[i], i))

    if pending:
        if jobs <= 1:
            _run_serial(specs, pending, records, results, cache, retries,
                        worker, events, progress)
        else:
            _run_pooled(specs, pending, records, results, cache, jobs,
                        timeout, retries, worker, events, progress)

    for i, j in dup_of.items():
        results[i] = results[j]

    return EngineReport(
        jobs=max(1, jobs),
        records=records,
        results=results,
        wall_s=time.perf_counter() - started,
    )


def _finish(index: int, payload: dict, specs, records, results, cache) -> bool:
    """Decode one successful payload; returns False on a decode error."""
    try:
        results[index] = result_from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        records[index].status = FAILED
        records[index].error = f"bad worker payload: {exc}"
        return False
    records[index].status = EXECUTED
    if cache is not None:
        cache.store_run(specs[index], payload)
    return True


def _run_serial(specs, pending, records, results, cache, retries,
                worker, events=None, progress=None) -> None:
    for i in pending:
        record = records[i]
        t0 = time.perf_counter()
        payload = None
        with maybe_span(events, specs[i].describe(), "engine.job") as info:
            while record.attempts <= retries:
                record.attempts += 1
                try:
                    payload = worker(specs[i], cache)
                    break
                except Exception as exc:  # noqa: BLE001 — must survive
                    record.error = f"{type(exc).__name__}: {exc}"
            info["attempts"] = record.attempts
            info["status"] = "failed" if payload is None else "executed"
        record.wall_s = time.perf_counter() - t0
        if payload is None:
            record.status = FAILED
        else:
            _finish(i, payload, specs, records, results, cache)
        _notify(progress, record)


def _run_pooled(specs, pending, records, results, cache, jobs, timeout,
                retries, worker, events=None, progress=None) -> None:
    queue = list(pending)
    while queue:
        round_jobs, queue = queue, []
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(round_jobs)))
        futures = {}
        starts = {}
        for i in round_jobs:
            records[i].attempts += 1
            starts[i] = time.perf_counter()
            futures[pool.submit(worker, specs[i], cache)] = i
        timed_out = False
        for future, i in futures.items():
            record = records[i]
            try:
                payload = future.result(timeout=timeout)
            except FutureTimeout:
                timed_out = True
                future.cancel()
                record.error = f"timed out after {timeout}s"
                record.wall_s = time.perf_counter() - starts[i]
                if record.attempts <= retries:
                    queue.append(i)
                else:
                    record.status = FAILED
                    _notify(progress, record)
                continue
            except BrokenProcessPool:
                # A worker died (segfault/os._exit); every unfinished
                # future in this round reports broken.  Retry each such
                # job in a fresh pool until its attempts run out.
                record.error = "worker process crashed"
                record.wall_s = time.perf_counter() - starts[i]
                if record.attempts <= retries:
                    queue.append(i)
                else:
                    record.status = FAILED
                    _notify(progress, record)
                continue
            except Exception as exc:  # noqa: BLE001 — sweep must survive
                record.error = f"{type(exc).__name__}: {exc}"
                record.wall_s = time.perf_counter() - starts[i]
                if record.attempts <= retries:
                    queue.append(i)
                else:
                    record.status = FAILED
                    _notify(progress, record)
                continue
            record.wall_s = time.perf_counter() - starts[i]
            _finish(i, payload, specs, records, results, cache)
            _notify(progress, record)
            if events is not None:
                events.complete(specs[i].describe(), "engine.job",
                                starts[i] * 1e6, record.wall_s * 1e6,
                                domain="wall",
                                attempts=record.attempts)
        pool.shutdown(wait=not timed_out, cancel_futures=True)
        if timed_out:
            # Don't let a hung worker outlive its round.
            for proc in getattr(pool, "_processes", None) or {}:
                with contextlib.suppress(Exception):  # pragma: no cover
                    pool._processes[proc].terminate()


def run_comparisons(
    workloads,
    scale: str = "small",
    seed: int = 7,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    timeout: float | None = None,
    retries: int = 1,
    **knobs,
) -> tuple[dict[str, Comparison], EngineReport]:
    """Scalar-vs-DySER comparisons for ``workloads`` through the engine.

    Returns ``(comparisons by workload name, report)``.  Raises
    :class:`~repro.engine.report.EngineFailure` if any job failed.
    """
    specs = SweepSpec.comparison(workloads, scale=scale, seed=seed,
                                 **knobs).jobs()
    report = run_jobs(specs, jobs=jobs, cache=cache, timeout=timeout,
                      retries=retries)
    report.raise_on_failure()
    comparisons = {}
    for i in range(0, len(specs), 2):
        comparisons[specs[i].workload] = Comparison(
            workload=specs[i].workload,
            scalar=report.results[i],
            dyser=report.results[i + 1],
        )
    return comparisons, report
