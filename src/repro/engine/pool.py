"""Job execution: serial fallback and a fault-tolerant process pool.

:func:`run_jobs` takes a list of :class:`JobSpec`, consults the
persistent :class:`~repro.engine.cache.ArtifactCache`, deduplicates
identical specs, and executes the remaining jobs either in-process
(``jobs=1`` — byte-identical to the historical serial paths) or across
a ``ProcessPoolExecutor`` with per-job timeout and bounded retry on
worker crashes.  One failed design point never aborts the sweep; it is
recorded in the returned :class:`~repro.engine.report.EngineReport`.

The worker contract is a picklable callable ``worker(spec, cache) ->
payload dict`` (see :func:`result_to_dict`); tests inject failing or
sleeping workers to exercise the retry/timeout machinery.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from repro.harness.runner import Comparison, RunResult, run_workload
from repro.obs.events import maybe_span

from repro.engine.cache import ArtifactCache, result_from_dict, result_to_dict
from repro.engine.jobs import JobSpec, comparison_jobs
from repro.engine.report import (
    DUPLICATE,
    EXECUTED,
    FAILED,
    HIT,
    REJECTED,
    EngineReport,
    JobRecord,
)


def execute_job(spec: JobSpec, cache: ArtifactCache | None = None,
                trace=None) -> RunResult:
    """Run one job, reusing a cached compiled program when available.

    ``trace`` (a :class:`repro.obs.events.TraceOptions`) enables the
    structured event stream for this execution; tracing bypasses the
    compiled-artifact reuse so compiler passes appear in the timeline.
    """
    traced = trace is not None and trace.enabled
    compiled = (cache.load_compile(spec)
                if cache is not None and not traced else None)
    had_artifact = compiled is not None
    result = run_workload(spec.to_run_config(trace=trace),
                          compiled=compiled)
    if cache is not None and not had_artifact:
        cache.store_compile(spec, result.compile_result)
    return result


def _worker(spec: JobSpec, cache: ArtifactCache | None = None) -> dict:
    """Default worker: execute and return a serialized run summary."""
    return result_to_dict(execute_job(spec, cache))


def run_jobs(
    specs: list[JobSpec],
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    timeout: float | None = None,
    retries: int = 1,
    worker=None,
    events=None,
) -> EngineReport:
    """Execute ``specs``; returns a report with results aligned to them.

    ``jobs=1`` runs serially in-process (no pool, fully deterministic);
    ``jobs>1`` fans out over worker processes.  ``timeout`` (seconds,
    per job) and crash recovery apply to the pooled path; a job is
    retried at most ``retries`` times before being recorded as FAILED.

    ``events`` (an :class:`repro.obs.events.EventStream` or None)
    records the job lifecycle — cache hits, dedups, executions and
    failures — as wall-clock events for the timeline exporter.
    """
    from repro.analysis.speclint import lint_spec

    worker = worker or _worker
    started = time.perf_counter()
    n = len(specs)
    records = [JobRecord(spec=spec) for spec in specs]
    results: list = [None] * n

    def mark(name: str, spec: JobSpec) -> None:
        if events is not None:
            events.instant(name, "engine.job",
                           time.perf_counter() * 1e6, domain="wall",
                           spec=spec.describe())

    # Pre-flight lint (once per unique hash): an illegal spec becomes a
    # REJECTED record carrying its diagnostics instead of burning a
    # worker slot (or a timeout) discovering the problem dynamically.
    lint_by_hash: dict[str, object] = {}

    # Cache probe + dedup (first occurrence of a hash is the primary).
    primary: dict[str, int] = {}
    dup_of: dict[int, int] = {}
    pending: list[int] = []
    for i, spec in enumerate(specs):
        h = spec.job_hash
        lint = lint_by_hash.get(h)
        if lint is None:
            lint = lint_by_hash[h] = lint_spec(spec)
        if lint.diagnostics:
            records[i].diagnostics = list(lint.diagnostics)
        if not lint.ok:
            records[i].status = REJECTED
            records[i].error = "; ".join(
                f"{d.code}: {d.message}" for d in lint.errors)
            mark("job_rejected", spec)
            continue
        if h in primary:
            dup_of[i] = primary[h]
            records[i].status = DUPLICATE
            mark("job_duplicate", spec)
            continue
        primary[h] = i
        payload = cache.load_run(spec) if cache is not None else None
        if payload is not None:
            try:
                results[i] = result_from_dict(payload)
                records[i].status = HIT
                mark("job_cache_hit", spec)
                continue
            except (KeyError, ValueError):
                pass  # stale/unreadable entry: treat as miss
        pending.append(i)

    if pending:
        if jobs <= 1:
            _run_serial(specs, pending, records, results, cache, retries,
                        worker, events)
        else:
            _run_pooled(specs, pending, records, results, cache, jobs,
                        timeout, retries, worker, events)

    for i, j in dup_of.items():
        results[i] = results[j]

    return EngineReport(
        jobs=max(1, jobs),
        records=records,
        results=results,
        wall_s=time.perf_counter() - started,
    )


def _finish(index: int, payload: dict, specs, records, results, cache) -> bool:
    """Decode one successful payload; returns False on a decode error."""
    try:
        results[index] = result_from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        records[index].status = FAILED
        records[index].error = f"bad worker payload: {exc}"
        return False
    records[index].status = EXECUTED
    if cache is not None:
        cache.store_run(specs[index], payload)
    return True


def _run_serial(specs, pending, records, results, cache, retries,
                worker, events=None) -> None:
    for i in pending:
        record = records[i]
        t0 = time.perf_counter()
        payload = None
        with maybe_span(events, specs[i].describe(), "engine.job") as info:
            while record.attempts <= retries:
                record.attempts += 1
                try:
                    payload = worker(specs[i], cache)
                    break
                except Exception as exc:  # noqa: BLE001 — must survive
                    record.error = f"{type(exc).__name__}: {exc}"
            info["attempts"] = record.attempts
            info["status"] = "failed" if payload is None else "executed"
        record.wall_s = time.perf_counter() - t0
        if payload is None:
            record.status = FAILED
        else:
            _finish(i, payload, specs, records, results, cache)


def _run_pooled(specs, pending, records, results, cache, jobs, timeout,
                retries, worker, events=None) -> None:
    queue = list(pending)
    while queue:
        round_jobs, queue = queue, []
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(round_jobs)))
        futures = {}
        starts = {}
        for i in round_jobs:
            records[i].attempts += 1
            starts[i] = time.perf_counter()
            futures[pool.submit(worker, specs[i], cache)] = i
        timed_out = False
        for future, i in futures.items():
            record = records[i]
            try:
                payload = future.result(timeout=timeout)
            except FutureTimeout:
                timed_out = True
                future.cancel()
                record.error = f"timed out after {timeout}s"
                record.wall_s = time.perf_counter() - starts[i]
                if record.attempts <= retries:
                    queue.append(i)
                else:
                    record.status = FAILED
                continue
            except BrokenProcessPool:
                # A worker died (segfault/os._exit); every unfinished
                # future in this round reports broken.  Retry each such
                # job in a fresh pool until its attempts run out.
                record.error = "worker process crashed"
                record.wall_s = time.perf_counter() - starts[i]
                if record.attempts <= retries:
                    queue.append(i)
                else:
                    record.status = FAILED
                continue
            except Exception as exc:  # noqa: BLE001 — sweep must survive
                record.error = f"{type(exc).__name__}: {exc}"
                record.wall_s = time.perf_counter() - starts[i]
                if record.attempts <= retries:
                    queue.append(i)
                else:
                    record.status = FAILED
                continue
            record.wall_s = time.perf_counter() - starts[i]
            _finish(i, payload, specs, records, results, cache)
            if events is not None:
                events.complete(specs[i].describe(), "engine.job",
                                starts[i] * 1e6, record.wall_s * 1e6,
                                domain="wall",
                                attempts=record.attempts)
        pool.shutdown(wait=not timed_out, cancel_futures=True)
        if timed_out:
            # Don't let a hung worker outlive its round.
            for proc in getattr(pool, "_processes", None) or {}:
                try:
                    pool._processes[proc].terminate()
                except Exception:  # pragma: no cover - best effort
                    pass


def run_comparisons(
    workloads,
    scale: str = "small",
    seed: int = 7,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    timeout: float | None = None,
    retries: int = 1,
    **knobs,
) -> tuple[dict[str, Comparison], EngineReport]:
    """Scalar-vs-DySER comparisons for ``workloads`` through the engine.

    Returns ``(comparisons by workload name, report)``.  Raises
    :class:`~repro.engine.report.EngineFailure` if any job failed.
    """
    specs = comparison_jobs(workloads, scale=scale, seed=seed, **knobs)
    report = run_jobs(specs, jobs=jobs, cache=cache, timeout=timeout,
                      retries=retries)
    report.raise_on_failure()
    comparisons = {}
    for i in range(0, len(specs), 2):
        comparisons[specs[i].workload] = Comparison(
            workload=specs[i].workload,
            scalar=report.results[i],
            dyser=report.results[i + 1],
        )
    return comparisons, report
