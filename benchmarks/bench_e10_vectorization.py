"""E10 — Vectorization ablation ("breaking SIMD shackles").

Isolates the contribution of the compiler's two throughput transforms on
regular kernels, and shows they buy nothing on the curtailing shapes:

- base:      offload, no unrolling, scalar port transfers;
- +unroll:   invocation pipelining (cloned lanes), scalar transfers;
- +vector:   unrolling plus wide (cache-line) port transfers.

Shape: each step is a clear multiplier on regular code; the irregular-
control kernels stay flat across all three.
"""

from common import SCALE, emit, once

from repro.compiler import CompilerOptions
from repro.dyser import Fabric, FabricGeometry
from repro.harness import compare, format_table

KERNELS = ("vecadd", "saxpy", "dotprod", "mm", "newton_lcd")

VARIANTS = (
    ("base", CompilerOptions(unroll=1, vectorize=False)),
    ("+unroll", CompilerOptions(unroll=8, vectorize=False)),
    ("+vector", CompilerOptions(unroll=8, vectorize=True)),
)


def _with_fabric(options: CompilerOptions) -> CompilerOptions:
    options.fabric = Fabric(FabricGeometry(8, 8))
    return options


def sweep():
    results: dict[str, dict[str, float]] = {}
    for name in KERNELS:
        results[name] = {}
        for label, options in VARIANTS:
            c = compare(name, scale=SCALE, options=_with_fabric(
                CompilerOptions(unroll=options.unroll,
                                vectorize=options.vectorize)))
            assert c.scalar.correct and c.dyser.correct, (name, label)
            results[name][label] = c.speedup
    return results


def test_e10_vectorization(benchmark):
    results = once(benchmark, sweep)
    rows = [
        [name, *(f"{results[name][label]:.2f}x" for label, _o in VARIANTS)]
        for name in KERNELS
    ]
    table = format_table(
        ["benchmark", *(label for label, _o in VARIANTS)],
        rows,
        title="E10: unrolling and wide-transfer ablation",
    )
    emit("E10: vectorization", table)

    for name in ("vecadd", "saxpy", "mm"):
        base = results[name]["base"]
        unrolled = results[name]["+unroll"]
        vectored = results[name]["+vector"]
        # Each transform contributes on regular kernels.
        assert unrolled > base * 1.1, name
        assert vectored > unrolled * 1.1, name
    # The loop-carried-control kernel is immune to both transforms.
    lcd = results["newton_lcd"]
    assert max(lcd.values()) < min(lcd.values()) * 1.25
