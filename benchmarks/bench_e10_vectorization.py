"""E10 — Vectorization ablation ("breaking SIMD shackles").

Isolates the contribution of the compiler's two throughput transforms on
regular kernels, and shows they buy nothing on the curtailing shapes:

- base:      offload, no unrolling, scalar port transfers;
- +unroll:   invocation pipelining (cloned lanes), scalar transfers;
- +vector:   unrolling plus wide (cache-line) port transfers.

Shape: each step is a clear multiplier on regular code; the irregular-
control kernels stay flat across all three.
"""

from common import SCALE, emit, engine_kwargs, once

from repro.engine import JobSpec, run_jobs
from repro.harness import format_table

KERNELS = ("vecadd", "saxpy", "dotprod", "mm", "newton_lcd")

#: (label, unroll factor, wide port transfers).
VARIANTS = (
    ("base", 1, False),
    ("+unroll", 8, False),
    ("+vector", 8, True),
)


def sweep():
    """Ablation grid through the engine: one batched submission.

    Scalar baselines do not depend on the DySER transform knobs, so the
    engine collapses them to one run per kernel.
    """
    specs = []
    for name in KERNELS:
        specs.append(JobSpec(name, mode="scalar", scale=SCALE))
        for _label, unroll, vectorize in VARIANTS:
            specs.append(JobSpec(name, mode="dyser", scale=SCALE,
                                 unroll=unroll, vectorize=vectorize))
    report = run_jobs(specs, **engine_kwargs())
    report.raise_on_failure()
    results: dict[str, dict[str, float]] = {}
    stride = 1 + len(VARIANTS)
    for i, name in enumerate(KERNELS):
        scalar = report.results[i * stride]
        results[name] = {}
        for j, (label, _unroll, _vectorize) in enumerate(VARIANTS):
            dyser = report.results[i * stride + 1 + j]
            assert scalar.correct and dyser.correct, (name, label)
            results[name][label] = scalar.cycles / dyser.cycles
    return results


def test_e10_vectorization(benchmark):
    results = once(benchmark, sweep)
    rows = [
        [name, *(f"{results[name][label]:.2f}x" for label, _u, _v in VARIANTS)]
        for name in KERNELS
    ]
    table = format_table(
        ["benchmark", *(label for label, _u, _v in VARIANTS)],
        rows,
        title="E10: unrolling and wide-transfer ablation",
    )
    emit("E10: vectorization", table)

    for name in ("vecadd", "saxpy", "mm"):
        base = results[name]["base"]
        unrolled = results[name]["+unroll"]
        vectored = results[name]["+vector"]
        # Each transform contributes on regular kernels.
        assert unrolled > base * 1.1, name
        assert vectored > unrolled * 1.1, name
    # The loop-carried-control kernel is immune to both transforms.
    lcd = results["newton_lcd"]
    assert max(lcd.values()) < min(lcd.values()) * 1.25
