"""E11 — Static performance model accuracy (predicted vs measured).

The static performance-bound analyzer (:mod:`repro.analysis.perf`)
predicts every suite kernel's cycle count — and a sound lower bound —
by abstract interpretation alone, with zero simulation.  This benchmark
holds it to both contracts across all 18 kernels x both modes at the
standard small scale:

- **accuracy** — mean absolute percentage error (MAPE) of the
  prediction vs the reference simulator, gated at
  :data:`MAPE_CEILING`;
- **soundness** — the static lower bound never exceeds measured
  cycles, anywhere.

Two entry points:

- ``pytest benchmarks/bench_e11_perfmodel.py --benchmark-only``
  measures and archives the table under ``results/e11.txt``;
- ``python benchmarks/bench_e11_perfmodel.py --check`` recomputes the
  gate for CI (exit 1 on violation), printing the table either way.
"""

from __future__ import annotations

import sys

from common import SCALE, emit, once

#: Acceptance ceiling for suite mean absolute percentage error.
MAPE_CEILING = 0.15


def measure():
    from repro import RunConfig, analyze_workload, run_workload
    from repro.workloads import SUITE

    rows = []
    errors = []
    unsound = []
    for name in sorted(SUITE):
        for mode in ("scalar", "dyser"):
            prediction = analyze_workload(name, mode=mode, scale=SCALE)
            result = run_workload(
                RunConfig(workload=name, mode=mode, scale=SCALE))
            measured = result.stats.cycles
            predicted = prediction.predicted_cycles
            ape = (abs(predicted - measured) / measured
                   if predicted is not None and measured else None)
            if ape is not None:
                errors.append(ape)
            if prediction.lower_bound > measured:
                unsound.append((name, mode, prediction.lower_bound,
                                measured))
            bottleneck = "-"
            if prediction.regions:
                worst = max(prediction.regions,
                            key=lambda r: r.invocations)
                bottleneck = worst.bottleneck
            rows.append([
                f"{name}/{mode}",
                str(predicted) if predicted is not None else "-",
                str(measured),
                str(prediction.lower_bound),
                f"{ape:.2%}" if ape is not None else "-",
                "yes" if prediction.exact else "no",
                bottleneck,
            ])
    mape = sum(errors) / len(errors) if errors else 1.0
    return rows, mape, unsound, len(errors)


def render(rows, mape, unsound, predicted_count) -> str:
    from repro.harness import format_table

    table = format_table(
        ["config", "predicted", "measured", "bound", "abs err",
         "exact", "bottleneck"],
        rows,
        title="E11: static performance model vs simulator "
              f"(scale={SCALE})",
    )
    lines = [
        table,
        "",
        f"configs predicted: {predicted_count}/{len(rows)}",
        f"suite MAPE: {mape:.2%} (ceiling {MAPE_CEILING:.0%})",
        f"bound violations: {len(unsound)}",
    ]
    return "\n".join(lines)


def validate(mape, unsound, predicted_count, total) -> list[str]:
    problems = []
    if predicted_count < total:
        problems.append(
            f"only {predicted_count}/{total} configs produced a "
            f"prediction")
    if mape > MAPE_CEILING:
        problems.append(
            f"suite MAPE {mape:.2%} exceeds ceiling "
            f"{MAPE_CEILING:.0%}")
    for name, mode, bound, measured in unsound:
        problems.append(
            f"UNSOUND bound: {name}/{mode} bound={bound} > "
            f"measured={measured}")
    return problems


def test_e11_perf_model(benchmark):
    rows, mape, unsound, predicted_count = once(benchmark, measure)
    emit("E11: static perf model",
         render(rows, mape, unsound, predicted_count))
    problems = validate(mape, unsound, predicted_count, len(rows))
    assert not problems, "; ".join(problems)


def main(argv) -> int:
    check = "--check" in argv
    rows, mape, unsound, predicted_count = measure()
    text = render(rows, mape, unsound, predicted_count)
    if check:
        print(text)
        problems = validate(mape, unsound, predicted_count, len(rows))
        for problem in problems:
            print(f"GATE FAILURE: {problem}", file=sys.stderr)
        print(f"perf-model gate: MAPE {mape:.2%} <= "
              f"{MAPE_CEILING:.0%}, {len(unsound)} bound violations: "
              f"{'FAIL' if problems else 'ok'}")
        return 1 if problems else 0
    emit("E11: static perf model", text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
