"""E2 — Headline speedup figure.

Per-benchmark SPARC-DySER speedup over the OpenSPARC scalar build, plus
the geometric means the abstract summarizes ("DySER's performance
improvement to OpenSPARC is 6X").  Absolute factors come from our
simulator calibration; the shape that must hold: every regular kernel
wins clearly, irregular-compute kernels win modestly, the curtailing
shapes sit near 1x, and the compute-kernel geomean lands in the
mid-single digits.
"""

from common import SCALE, emit, engine_kwargs, once

from repro.engine import run_comparisons
from repro.harness import format_series, geomean
from repro.workloads import IRREGULAR_COMPUTE, IRREGULAR_CONTROL, REGULAR, SUITE, get


def sweep():
    comparisons, _report = run_comparisons(
        sorted(SUITE), scale=SCALE, **engine_kwargs())
    results = {}
    for name, c in comparisons.items():
        assert c.scalar.correct and c.dyser.correct, name
        results[name] = c.speedup
    return results


def test_e2_speedup(benchmark):
    speedups = once(benchmark, sweep)
    names = sorted(speedups, key=lambda n: -speedups[n])
    text = format_series(
        "E2: SPARC-DySER speedup over OpenSPARC (per benchmark)",
        names, [speedups[n] for n in names])
    categories = {
        REGULAR: [], IRREGULAR_COMPUTE: [], IRREGULAR_CONTROL: []}
    for name, s in speedups.items():
        categories[get(name).category].append(s)
    summary = "\n".join(
        f"geomean {cat:<18} {geomean(vals):5.2f}x"
        for cat, vals in categories.items()
    ) + f"\ngeomean {'all':<18} {geomean(list(speedups.values())):5.2f}x"
    emit("E2: speedup", text + "\n\n" + summary)

    regular = geomean(categories[REGULAR])
    irregular_compute = geomean(categories[IRREGULAR_COMPUTE])
    # Paper shape: compute-intense kernels dominate and the mid-single-
    # digit geomean holds; irregular-but-computational code still wins.
    assert regular > 3.5
    assert regular > irregular_compute > 1.0
    # Finding ii's two curtailing shapes sit near 1x (collatz_diamonds,
    # the third IRREGULAR_CONTROL kernel, wins wall-clock but wastes
    # fabric work — E7 quantifies that separately).
    assert geomean([speedups["newton_lcd"], speedups["tpacf_bin"]]) < 1.5
    # Every regular kernel individually wins.
    assert all(speedups[n] > 1.5 for n in SUITE
               if get(n).category == REGULAR)
