"""E5 — Power and energy table.

Abstract anchor: DySER delivers its speedup "consuming only 200mW".  Per
benchmark we report the DySER block's average power, total system power,
and the scalar-vs-DySER energy and energy-delay-product ratios.  Shape:
the DySER block sits in the ~200 mW band on offloaded kernels, and
energy efficiency improves because runtime shrinks far more than power
grows.
"""

from common import SCALE, emit, once

from repro.harness import compare, format_table, geomean
from repro.workloads import REGULAR, SUITE, get


def sweep():
    rows = []
    offloaded_power = []
    energy_ratios = []
    for name in sorted(SUITE):
        c = compare(name, scale=SCALE)
        assert c.scalar.correct and c.dyser.correct, name
        dyser_mw = c.dyser.energy.dyser_power_mw
        accepted = any(
            r.accepted for r in c.dyser.compile_result.regions)
        if accepted:
            offloaded_power.append(dyser_mw)
        energy_ratios.append(c.energy_ratio)
        rows.append([
            name,
            f"{c.scalar.energy.avg_power_mw:.0f}",
            f"{c.dyser.energy.avg_power_mw:.0f}",
            f"{dyser_mw:.0f}",
            f"{c.energy_ratio:.2f}",
            f"{c.edp_ratio:.2f}",
        ])
    return rows, offloaded_power, energy_ratios


def test_e5_power(benchmark):
    rows, offloaded_power, energy_ratios = once(benchmark, sweep)
    table = format_table(
        ["benchmark", "scalar mW", "sparc-dyser mW", "dyser block mW",
         "energy gain", "EDP gain"],
        rows,
        title="E5: power and energy (DySER block anchored at ~200 mW)",
    )
    emit("E5: power", table)
    # The DySER block's power on offloaded kernels sits near the paper's
    # 200 mW headline (150-250 band for the busiest kernels).
    assert offloaded_power, "nothing offloaded?"
    assert 120 <= max(offloaded_power) <= 300
    assert min(offloaded_power) >= 100
    # Energy efficiency improves on the suite overall.
    assert geomean(energy_ratios) > 1.2
