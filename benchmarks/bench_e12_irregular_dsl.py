"""E12 — Sparse/irregular DSL tier (beyond-the-paper extension).

The paper's suite is dominated by regular streaming kernels; its
finding ii (E7) shows *why* — two control-flow shapes curtail the
compiler.  The ``irregular-dsl`` tier probes the same territory from
the other side: four kernels written in the user-facing ``repro.lang``
DSL whose memory access or control structure is data-dependent
(CSR SpMV, pointer chasing, an irregular-DAG reduction, a branchy
histogram).  Because they arrive through the untrusted-kernel
pipeline, this table also demonstrates that validated DSL kernels are
first-class: compiled, advised by the static linter, and measured by
exactly the machinery the built-ins use.

The table reports, per kernel, the offload verdict, speedup over
scalar, and the RPR30x advisory codes the static shape analysis
raises — the acceptance bar is that the tier's shapes are visible
*statically*, not only in the dynamic numbers.
"""

from common import SCALE, emit, once

from repro.analysis import lint_workload
from repro.harness import compare, format_table
from repro.workloads import get
from repro.workloads.dsl_kernels import DSL_SOURCES

CASES = tuple(sorted(DSL_SOURCES))


def measure():
    rows = []
    stats = {}
    for name in CASES:
        c = compare(name, scale=SCALE)
        assert c.scalar.correct and c.dyser.correct, name
        region = c.dyser.compile_result.regions[0]
        advisories = sorted({
            d.code for d in lint_workload(name).diagnostics
            if d.code.startswith("RPR30")})
        stats[name] = (c.speedup, region, advisories)
        rows.append([
            name, get(name).category, region.shape,
            "yes" if region.accepted else "no",
            f"{c.speedup:.2f}x",
            ",".join(advisories) or "-",
        ])
    return rows, stats


def test_e12_irregular_dsl(benchmark):
    rows, stats = once(benchmark, measure)
    table = format_table(
        ["kernel", "category", "shape", "offloaded", "speedup",
         "static advisories"],
        rows,
        title="E12: sparse/irregular kernels via the repro.lang DSL",
    )
    emit("E12: irregular DSL tier", table)

    for name in CASES:
        assert get(name).category == "irregular-dsl"

    advisories = {name: adv for name, (_s, _r, adv) in stats.items()}
    # at least one tier kernel must trip a curtailing-shape advisory
    # statically (the ISSUE 10 acceptance bar)
    assert any(advisories.values()), advisories
