"""E6 — Compiler effectiveness: auto-compiled vs hand-scheduled DySER.

The paper compares compiler-generated DySER code against manually
optimized versions.  We hand-write (in assembly, with hand-built
configurations) software-pipelined, double-accumulator implementations
of three kernels — applying the transforms the paper says the compiler
does not fully automate — and report how close the auto build comes.

Shape: auto reaches a large fraction of manual on streaming code; the
gap concentrates where manual code can software-pipeline the reduction
round trip.
"""

from common import SCALE, emit, once

import numpy as np

from repro.cpu import Core, Memory
from repro.dyser import (
    ConstRef,
    Dfg,
    DyserDevice,
    Fabric,
    FabricGeometry,
    FuOp,
    PortRef,
)
from repro.harness import RunConfig, format_table, run_workload
from repro.isa import assemble
from repro.workloads import get

FABRIC = Fabric(FabricGeometry(8, 8))


def _dot8_config() -> "DyserConfig":
    """acc_out = p16 + sum_i a_i*b_i over 8 wide lanes."""
    dfg = Dfg("manual_dot8")
    products = [
        dfg.add_node(FuOp.FMUL, [PortRef(i), PortRef(8 + i)])
        for i in range(8)
    ]
    level = products
    while len(level) > 1:
        level = [
            dfg.add_node(FuOp.FADD, [level[i], level[i + 1]])
            for i in range(0, len(level), 2)
        ]
    acc = dfg.add_node(FuOp.FADD, [level[0], PortRef(16)])
    dfg.set_output(0, acc)
    from repro.compiler.schedule import schedule

    return schedule(0, dfg, FABRIC)


MANUAL_DOT = """
    ; software-pipelined dot product, two accumulator chains (f8/f9),
    ; 8 elements per invocation; args: r8=y, r9=a, r10=b, r11=8n
    dinit 0
    li   r1, 0
    fli  f8, 0.0
    fli  f9, 0.0
    add  r2, r9, r1
    add  r3, r10, r1
    dfldw p0, r2, 8
    dfldw p8, r3, 8
    dfsend p16, f8
    addi r1, r1, 64
    add  r2, r9, r1
    add  r3, r10, r1
    dfldw p0, r2, 8
    dfldw p8, r3, 8
    dfsend p16, f9
    addi r1, r1, 64
loop:
    dfrecv f8, p0
    add  r2, r9, r1
    add  r3, r10, r1
    dfldw p0, r2, 8
    dfldw p8, r3, 8
    dfsend p16, f8
    addi r1, r1, 64
    dfrecv f9, p0
    add  r2, r9, r1
    add  r3, r10, r1
    dfldw p0, r2, 8
    dfldw p8, r3, 8
    dfsend p16, f9
    addi r1, r1, 64
    blt  r1, r11, loop
    dfrecv f8, p0
    dfrecv f9, p0
    fadd f8, f8, f9
    fst  f8, r8, 0
    halt
"""


def _saxpy_config(a: float) -> "DyserConfig":
    """8 lanes of out_i = a * x_i + y_i."""
    dfg = Dfg("manual_saxpy8")
    for i in range(8):
        prod = dfg.add_node(FuOp.FMUL, [ConstRef(a), PortRef(i)])
        dfg.set_output(i, dfg.add_node(FuOp.FADD, [prod, PortRef(8 + i)]))
    from repro.compiler.schedule import schedule

    return schedule(0, dfg, FABRIC)


MANUAL_SAXPY = """
    ; args: r8=y, r9=x, r10=8n; stores are decoupled so no pipelining
    ; tricks are needed beyond the wide transfers
    dinit 0
    li   r1, 0
loop:
    add  r2, r9, r1
    add  r3, r8, r1
    dfldw p0, r2, 8
    dfldw p8, r3, 8
    dfstw p0, r3, 8
    addi r1, r1, 64
    blt  r1, r10, loop
    halt
"""


def run_manual_dot(n=256, seed=7):
    memory = Memory(1 << 22)
    rng = np.random.default_rng(seed)
    a, b = rng.random(n), rng.random(n)
    py = memory.alloc(1)
    pa, pb = memory.alloc_numpy(a), memory.alloc_numpy(b)
    program = assemble(MANUAL_DOT)
    program.dyser_configs[0] = _dot8_config()
    core = Core(program, memory, dyser=DyserDevice(fabric=FABRIC))
    core.set_args((py, pa, pb, n * 8))
    stats = core.run()
    assert np.isclose(memory.load_word(py), float(np.dot(a, b)), rtol=1e-6)
    return stats.cycles


def run_manual_saxpy(n=256, seed=7):
    memory = Memory(1 << 22)
    rng = np.random.default_rng(seed)
    x, y = rng.random(n), rng.random(n)
    a = 2.5
    py, px = memory.alloc_numpy(y), memory.alloc_numpy(x)
    program = assemble(MANUAL_SAXPY)
    program.dyser_configs[0] = _saxpy_config(a)
    core = Core(program, memory, dyser=DyserDevice(fabric=FABRIC))
    core.set_args((py, px, n * 8))
    stats = core.run()
    assert np.allclose(memory.read_numpy(py, n), a * x + y)
    return stats.cycles


def measure():
    rows = []
    ratios = {}
    manual = {"dotprod": run_manual_dot(), "saxpy": run_manual_saxpy()}
    for name, manual_cycles in manual.items():
        auto = run_workload(
            RunConfig(workload=name, mode="dyser", scale=SCALE))
        scalar = run_workload(
            RunConfig(workload=name, mode="scalar", scale=SCALE))
        assert auto.correct and scalar.correct
        ratio = manual_cycles / auto.cycles
        ratios[name] = ratio
        rows.append([
            name, scalar.cycles, auto.cycles, manual_cycles,
            f"{scalar.cycles / auto.cycles:.2f}x",
            f"{scalar.cycles / manual_cycles:.2f}x",
            f"{ratio:.0%}",
        ])
    return rows, ratios


def test_e6_compiler_vs_manual(benchmark):
    rows, ratios = once(benchmark, measure)
    table = format_table(
        ["kernel", "scalar", "auto DySER", "manual DySER",
         "auto speedup", "manual speedup", "auto/manual"],
        rows,
        title="E6: compiler-generated vs hand-scheduled DySER code",
    )
    emit("E6: compiler vs manual", table)
    # Streaming kernel: the compiler reaches over half of hand-tuned
    # performance (the gap is prologue/remainder bookkeeping).
    assert ratios["saxpy"] >= 0.50
    # Reduction: manual software pipelining of the accumulator round
    # trip buys a further ~3x the compiler does not automate — the
    # paper's finding that some known transforms still need a human.
    assert 0.20 <= ratios["dotprod"] <= 0.80
