"""Shared helpers for the E-series benchmarks.

Each benchmark regenerates one of the paper's tables/figures, prints it,
and records it under ``results/`` so EXPERIMENTS.md can be refreshed from
a single run of ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Scale used by most experiments: large enough for warm-loop behaviour,
#: small enough that the full E-series runs in minutes.
SCALE = "small"


def emit(experiment: str, text: str) -> None:
    """Print a reproduced table/figure and archive it in results/.

    The archive write is atomic (temp file + rename) so a parallel sweep
    interrupted mid-write can never leave a truncated ``results/*.txt``.
    """
    banner = f"\n===== {experiment} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    target = RESULTS_DIR / f"{experiment.split(':')[0].lower()}.txt"
    tmp = target.with_name(f"{target.name}.tmp{os.getpid()}")
    tmp.write_text(text + "\n")
    os.replace(tmp, target)


def engine_kwargs() -> dict:
    """Engine settings for benchmark sweeps, overridable via environment.

    ``REPRO_ENGINE_JOBS`` (default 1) selects worker count;
    ``REPRO_ENGINE_CACHE=0`` disables the persistent artifact cache.
    ``--jobs 1`` with or without cache produces byte-identical tables.
    """
    from repro.engine import ArtifactCache

    jobs = int(os.environ.get("REPRO_ENGINE_JOBS", "1") or "1")
    use_cache = os.environ.get("REPRO_ENGINE_CACHE", "1") != "0"
    return {"jobs": jobs, "cache": ArtifactCache() if use_cache else None}


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulated runs are seconds-long; default benchmark calibration would
    re-run them dozens of times for no statistical gain.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
