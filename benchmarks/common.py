"""Shared helpers for the E-series benchmarks.

Each benchmark regenerates one of the paper's tables/figures, prints it,
and records it under ``results/`` so EXPERIMENTS.md can be refreshed from
a single run of ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Scale used by most experiments: large enough for warm-loop behaviour,
#: small enough that the full E-series runs in minutes.
SCALE = "small"


def emit(experiment: str, text: str) -> None:
    """Print a reproduced table/figure and archive it in results/."""
    banner = f"\n===== {experiment} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment.split(':')[0].lower()}.txt").write_text(
        text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulated runs are seconds-long; default benchmark calibration would
    re-run them dozens of times for no statistical gain.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
