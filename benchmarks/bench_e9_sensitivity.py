"""E9 — Sensitivity: fabric size and configuration-switch cost.

Two sweeps the HPCA'11-style analysis motivates and the prototype's
configuration cache addresses:

1. Fabric geometry 2x2..8x8: per-kernel speedup saturates once the
   region (at its best unroll factor) fits — bigger fabrics buy
   unrolling headroom, then flatten.
2. Config cache capacity 0..4 on a kernel forced to alternate between
   two configurations: with no cache every switch pays the full
   configuration reload; a small cache removes nearly all of it.
"""

from common import SCALE, emit, engine_kwargs, once

import numpy as np

from repro.compiler import compile_dyser
from repro.cpu import Core, Memory
from repro.dyser import DyserDevice, Fabric, FabricGeometry
from repro.dyser.config_cache import ConfigCacheParams
from repro.engine import JobSpec, run_jobs
from repro.harness import format_series, format_table

GEOMETRIES = ((2, 2), (4, 4), (6, 6), (8, 8))
KERNELS = ("saxpy", "mriq", "nbody")

#: Two regions inside one outer loop: each outer iteration switches the
#: fabric configuration twice, which is what the config cache exists for.
TWO_PHASE = """
kernel twophase(out float y[], float a[], float b[], int n, int m) {
    for (int t = 0; t < m; t = t + 1) {
        for (int i = 0; i < n; i = i + 1) {
            y[i] = y[i] + 2.0 * a[i] * a[i];
        }
        for (int i = 0; i < n; i = i + 1) {
            y[i] = y[i] * b[i] + 0.5;
        }
    }
}
"""


def fabric_sweep():
    """Geometry grid through the engine: one batched submission.

    The scalar baselines are geometry-independent, so the engine
    deduplicates them to a single run per kernel.
    """
    scalar_specs = [JobSpec(name, mode="scalar", scale=SCALE)
                    for name in KERNELS]
    dyser_specs = [
        JobSpec(name, mode="dyser", scale=SCALE, geometry=geometry)
        for geometry in GEOMETRIES for name in KERNELS
    ]
    report = run_jobs(scalar_specs + dyser_specs, **engine_kwargs())
    report.raise_on_failure()
    scalar = dict(zip(KERNELS, report.results[:len(KERNELS)]))
    results: dict[str, list[float]] = {name: [] for name in KERNELS}
    for offset, _geometry in enumerate(GEOMETRIES):
        base = len(KERNELS) * (offset + 1)
        for j, name in enumerate(KERNELS):
            dyser = report.results[base + j]
            assert scalar[name].correct and dyser.correct, name
            results[name].append(scalar[name].cycles / dyser.cycles)
    return results


def config_cache_sweep():
    """Two alternating regions with the config cache capacity swept."""
    from repro.cpu.statistics import StallCause

    compiled = compile_dyser(TWO_PHASE)
    accepted = [r for r in compiled.regions if r.accepted]
    assert len(accepted) == 2, compiled.regions
    n, m = 32, 12
    rng = np.random.default_rng(3)
    a, b = rng.random(n), rng.random(n)
    y0 = rng.random(n)
    expected = y0.copy()
    for _ in range(m):
        expected = expected + 2.0 * a * a
        expected = expected * b + 0.5

    rows = []
    for capacity in (0, 1, 2, 4):
        memory = Memory(1 << 22)
        py = memory.alloc_numpy(y0)
        pa, pb = memory.alloc_numpy(a), memory.alloc_numpy(b)
        device = DyserDevice(
            fabric=Fabric(FabricGeometry(8, 8)),
            cache_params=ConfigCacheParams(capacity=capacity))
        core = Core(compiled.program, memory, dyser=device)
        core.set_args((py, pa, pb, n, m))
        stats = core.run()
        assert np.allclose(memory.read_numpy(py, n), expected, rtol=1e-9)
        rows.append([
            capacity, stats.cycles, stats.dyser_config_loads,
            stats.dyser_config_hits,
            stats.stall_cycles.get(StallCause.DYSER_CONFIG, 0),
        ])
    return rows


def test_e9_fabric_size(benchmark):
    results = once(benchmark, fabric_sweep)
    labels = [f"{w}x{h}" for w, h in GEOMETRIES]
    text = "\n\n".join(
        format_series(f"E9a speedup vs fabric size: {name}",
                      labels, series)
        for name, series in results.items()
    )
    emit("E9a: fabric size", text)
    for name, series in results.items():
        # Bigger fabrics never hurt (allowing placement noise), and the
        # best point is at or near the largest geometry.
        assert series[-1] >= series[0] * 0.999, name
        assert series[-1] >= 0.85 * max(series), name
    # Compound regions (mriq's polynomial, nbody's div/sqrt chain) do
    # not fit the smallest fabrics at all; capability (not just FU
    # count) gates them.
    assert results["mriq"][0] == 1.0
    assert results["nbody"][-1] > results["nbody"][0]


def test_e9_config_cache(benchmark):
    rows = once(benchmark, config_cache_sweep)
    table = format_table(
        ["cache capacity", "cycles", "config loads", "hits",
         "config stall cycles"],
        rows,
        title="E9b: configuration cache sensitivity (two-phase kernel)",
    )
    emit("E9b: config cache", table)
    by_capacity = {row[0]: row for row in rows}
    # Capacity 0 reloads on every switch; capacity 1 thrashes (two
    # alternating configs); capacity 2 holds both and removes nearly all
    # configuration stalls.
    assert by_capacity[0][3] == 0
    assert by_capacity[2][4] < by_capacity[0][4] / 3
    assert by_capacity[2][1] < by_capacity[0][1]
    assert by_capacity[4][4] <= by_capacity[2][4]
