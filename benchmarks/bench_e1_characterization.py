"""E1 — Benchmark characterization table.

Reconstructs the methodology table: per benchmark, its category, the
compiler's region decision (accepted / rejection reason), region size in
execute ops, interface width, unroll factor, and the fraction of dynamic
instructions the DySER build eliminates relative to scalar.
"""

from common import SCALE, emit, once

from repro.harness import compare, format_table
from repro.workloads import SUITE, get


def characterize():
    rows = []
    for name in sorted(SUITE):
        c = compare(name, scale=SCALE)
        assert c.scalar.correct and c.dyser.correct, name
        regions = c.dyser.compile_result.regions
        accepted = [r for r in regions if r.accepted]
        insn_reduction = 1.0 - (
            c.dyser.instructions / c.scalar.instructions)
        if accepted:
            region = accepted[0]
            detail = (region.execute_ops, region.input_ports,
                      region.output_ports, region.unrolled)
        else:
            detail = (0, 0, 0, 0)
        reason = regions[0].reason if regions else "no loops"
        rows.append([
            name, get(name).category, regions[0].shape if regions else "-",
            *detail, f"{insn_reduction:.0%}",
            ("yes" if accepted else f"no: {reason[:36]}"),
        ])
    return rows


def test_e1_characterization(benchmark):
    rows = once(benchmark, characterize)
    table = format_table(
        ["benchmark", "category", "shape", "exec_ops", "in", "out",
         "unroll", "insn_redux", "offloaded"],
        rows,
        title="E1: benchmark characterization (cf. paper methodology table)",
    )
    emit("E1: characterization", table)
    by_name = {r[0]: r for r in rows}
    # Shape checks: regular kernels offload with large regions; the
    # curtailing-shape kernels do not offload (or barely).
    assert by_name["mm"][8] == "yes"
    assert by_name["nbody"][3] >= 10          # big compound region
    assert by_name["tpacf_bin"][8].startswith("no")
    # Offloaded builds execute far fewer host instructions.
    assert int(by_name["vecadd"][7].rstrip("%")) > 50
