"""E8 — FPGA resource utilization table.

Regenerates the prototype's per-block synthesis table: OpenSPARC core,
DySER fabric (swept 2x2..8x8), and the integrated system — LUTs, FFs,
BRAM, DSP and achieved clock.  Shape: a 64-FU DySER is comparable to
(somewhat smaller than) one core; fabric area scales ~linearly in FU
count; the system clock is set by the core, not DySER.
"""

from common import emit, once

from repro.dyser import Fabric, FabricGeometry
from repro.fpga import dyser_resources, sparc_core_resources, system_report
from repro.harness import format_table

GEOMETRIES = ((2, 2), (4, 4), (6, 6), (8, 8))


def build_table():
    rows = []
    core = sparc_core_resources()
    rows.append(["sparc_core (w/ iface)", core.resources.luts,
                 core.resources.ffs, core.resources.brams,
                 core.resources.dsps, f"{core.fmax_mhz:.1f}"])
    blocks = {}
    for width, height in GEOMETRIES:
        block = dyser_resources(Fabric(FabricGeometry(width, height)))
        blocks[(width, height)] = block
        r = block.resources
        rows.append([block.name, r.luts, r.ffs, r.brams, r.dsps,
                     f"{block.fmax_mhz:.1f}"])
    system = system_report(Fabric(FabricGeometry(8, 8)))[-1]
    rows.append([system.name, system.resources.luts,
                 system.resources.ffs, system.resources.brams,
                 system.resources.dsps, f"{system.fmax_mhz:.1f}"])
    return rows, core, blocks, system


def test_e8_fpga_resources(benchmark):
    rows, core, blocks, system = once(benchmark, build_table)
    table = format_table(
        ["block", "LUTs", "FFs", "BRAM", "DSP", "fmax MHz"],
        rows,
        title="E8: FPGA utilization (calibrated cost model)",
    )
    emit("E8: fpga resources", table)

    big = blocks[(8, 8)].resources
    small = blocks[(2, 2)].resources
    # ~Linear scaling in FU count (64/4 = 16x FUs -> 8..20x LUTs).
    assert 8 <= big.luts / small.luts <= 20
    # A 64-FU DySER is core-comparable, not core-dwarfing.
    assert 0.4 < big.luts / core.resources.luts < 1.6
    # System clock limited by the core.
    assert system.fmax_mhz == core.fmax_mhz
    assert blocks[(8, 8)].fmax_mhz > core.fmax_mhz
