"""Service latency/throughput: closed-loop load against ``repro serve``.

Two entry points:

- ``python benchmarks/bench_service.py`` runs an in-process service
  (:class:`repro.service.ServiceThread`, ephemeral port) under a
  closed-loop load generator — ``--clients`` threads each with its own
  keep-alive :class:`~repro.service.ServiceClient`, issuing the next
  request as soon as the previous one answers — and appends a
  machine-readable entry to ``BENCH_service.json`` (the committed
  history of the latency acceptance criterion);
- ``--check`` validates a fresh measurement against the acceptance
  gates instead of appending (CI's service bench-smoke).

Methodology: the request mix cycles over a few (workload, mode) specs
at the tiny scale.  A warm-up pass first pushes every spec through the
cold path (compile + fast-backend simulation, artifact cache write);
the measured closed-loop run is then served from the artifact cache at
admission, so its latencies isolate *service dispatch* — HTTP parse,
admission gates, cache probe, response serialization.  Acceptance:
zero dropped completed jobs across the run and warm-cache p50 < 10 ms.
Cold-path latency is recorded alongside for context (it rides the
fast backend, PR 4).
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import pathlib
import platform
import statistics
import sys
import tempfile
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_service.json"

#: Serialization format tag for the benchmark history file.
BENCH_FORMAT = "repro-bench-service-v1"

#: Request mix: small kernels, both modes, tiny scale.
MIX = (
    {"workload": "vecadd", "mode": "dyser", "scale": "tiny"},
    {"workload": "vecadd", "mode": "scalar", "scale": "tiny"},
    {"workload": "saxpy", "mode": "dyser", "scale": "tiny"},
    {"workload": "dotprod", "mode": "dyser", "scale": "tiny"},
)

#: Acceptance gates (see ISSUE 5 / CI bench-smoke).
WARM_P50_LIMIT_MS = 10.0


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _latency_summary(latencies_ms: list[float],
                     wall_s: float) -> dict:
    return {
        "requests": len(latencies_ms),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(latencies_ms) / wall_s, 1)
        if wall_s else 0.0,
        "p50_ms": round(_percentile(latencies_ms, 0.50), 3),
        "p95_ms": round(_percentile(latencies_ms, 0.95), 3),
        "p99_ms": round(_percentile(latencies_ms, 0.99), 3),
        "mean_ms": round(statistics.fmean(latencies_ms), 3),
        "max_ms": round(max(latencies_ms), 3),
    }


def _closed_loop(port: int, requests: int, clients: int) -> dict:
    """``clients`` threads issue ``requests`` total, one at a time each."""
    from repro.service import ServiceClient

    latencies: list[float] = []
    statuses: dict[str, int] = {}
    errors: list[str] = []
    lock = threading.Lock()
    counter = iter(range(requests))

    def worker() -> None:
        client = ServiceClient(port=port, timeout=120, retries=3)
        with client:
            while True:
                with lock:
                    i = next(counter, None)
                if i is None:
                    return
                spec = MIX[i % len(MIX)]
                t0 = time.perf_counter()
                try:
                    reply = client.run(spec, raise_on_error=False)
                except Exception as exc:  # noqa: BLE001 - recorded
                    with lock:
                        errors.append(f"{type(exc).__name__}: {exc}")
                    continue
                dt_ms = (time.perf_counter() - t0) * 1e3
                with lock:
                    latencies.append(dt_ms)
                    status = reply.get("status", "no-status")
                    statuses[status] = statuses.get(status, 0) + 1
                    if not reply.get("ok"):
                        errors.append(f"{spec['workload']}: {status} "
                                      f"{reply.get('error')}")

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    summary = _latency_summary(latencies, wall_s)
    summary["statuses"] = {k: statuses[k] for k in sorted(statuses)}
    summary["dropped"] = (requests - len(latencies)) + len(errors)
    summary["errors"] = errors[:10]
    return summary


def measure(requests: int = 200, clients: int = 4) -> dict:
    """One benchmark entry: cold warm-up pass + warm closed-loop run."""
    from repro.engine.cache import ArtifactCache
    from repro.service import ServiceClient, ServiceThread

    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
        cache = ArtifactCache(tmp)
        with ServiceThread(cache=cache, queue_limit=max(64, clients * 4),
                           batch_window_s=0.001) as srv:
            # Cold pass: every spec in the mix takes the full path once
            # (compile + fast-backend run + artifact store).
            cold_latencies = []
            with ServiceClient(port=srv.port, timeout=300) as client:
                for spec in MIX:
                    t0 = time.perf_counter()
                    reply = client.run(spec)
                    cold_latencies.append(
                        (time.perf_counter() - t0) * 1e3)
                    assert reply["status"] == "executed", reply
            cold = _latency_summary(cold_latencies, sum(cold_latencies)
                                    / 1e3)
            # Warm closed loop: all answered from the artifact cache.
            warm = _closed_loop(srv.port, requests, clients)
            with ServiceClient(port=srv.port) as client:
                metrics_ok = client.metrics_text() \
                    .count("# TYPE repro_service") >= 5
                health = client.health()
    return {
        "date": _dt.date.today().isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "requests": requests,
        "clients": clients,
        "mix": len(MIX),
        "cold": cold,
        "warm": warm,
        "metrics_exposition_ok": metrics_ok,
        "requests_served": health["requests_served"],
    }


def validate(doc: dict) -> None:
    """Acceptance gates for a history document (raises on violation)."""
    assert doc.get("format") == BENCH_FORMAT, \
        f"bad format tag {doc.get('format')!r}"
    entries = doc.get("entries")
    assert entries, "no benchmark entries"
    for entry in entries:
        warm = entry["warm"]
        assert warm["dropped"] == 0, \
            f"{entry['date']}: {warm['dropped']} dropped requests"
        assert warm["p50_ms"] < WARM_P50_LIMIT_MS, \
            (f"{entry['date']}: warm p50 {warm['p50_ms']}ms over the "
             f"{WARM_P50_LIMIT_MS}ms gate")
        assert entry.get("metrics_exposition_ok"), \
            f"{entry['date']}: /metrics exposition failed to parse"


def _render(entry: dict) -> str:
    warm, cold = entry["warm"], entry["cold"]
    return (
        f"service closed loop: {entry['requests']} requests, "
        f"{entry['clients']} clients\n"
        f"  warm (artifact-cache dispatch): "
        f"p50={warm['p50_ms']}ms p95={warm['p95_ms']}ms "
        f"p99={warm['p99_ms']}ms, {warm['throughput_rps']} req/s, "
        f"{warm['dropped']} dropped\n"
        f"  cold (compile + fast backend):  "
        f"p50={cold['p50_ms']}ms max={cold['max_ms']}ms "
        f"({entry['mix']} specs)\n"
        f"  statuses: {warm['statuses']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200,
                        help="closed-loop request count (default 200)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent closed-loop clients")
    parser.add_argument("--check", action="store_true",
                        help="measure and gate without writing history")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write history here instead of "
                             "BENCH_service.json")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    entry = measure(requests=args.requests, clients=args.clients)
    print(_render(entry))

    if args.check:
        validate({"format": BENCH_FORMAT, "entries": [entry]})
        print("service bench gates OK "
              f"(warm p50 {entry['warm']['p50_ms']}ms < "
              f"{WARM_P50_LIMIT_MS}ms, 0 dropped)")
        return 0

    path = pathlib.Path(args.output) if args.output else BENCH_PATH
    doc = {"format": BENCH_FORMAT, "entries": []}
    if path.exists():
        doc = json.loads(path.read_text())
    doc["entries"].append(entry)
    validate(doc)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"appended to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
