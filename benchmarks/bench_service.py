"""Service latency/throughput: closed-loop load against ``repro serve``.

Two entry points:

- ``python benchmarks/bench_service.py`` runs an in-process service
  (:class:`repro.service.ServiceThread`, ephemeral port) under a
  closed-loop load generator — ``--clients`` threads each with its own
  keep-alive :class:`~repro.service.ServiceClient`, issuing the next
  request as soon as the previous one answers — and appends a
  machine-readable entry to ``BENCH_service.json`` (the committed
  history of the latency acceptance criterion);
- ``--check`` validates a fresh measurement against the acceptance
  gates instead of appending (CI's service bench-smoke).

Methodology: the request mix cycles over a few (workload, mode) specs
at the tiny scale.  A warm-up pass first pushes every spec through the
cold path (compile + fast-backend simulation, artifact cache write);
the measured closed-loop run is then served from the artifact cache at
admission, so its latencies isolate *service dispatch* — HTTP parse,
admission gates, cache probe, response serialization.  Acceptance:
zero dropped completed jobs across the run and warm-cache p50 < 10 ms.
Cold-path latency is recorded alongside for context (it rides the
fast backend, PR 4).

``--workers N`` (N > 0) benchmarks the sharded gateway instead: an
in-process :class:`~repro.service.GatewayThread` fleet (gateway with
*no* shared cache, so every request crosses the forwarding hop; N
workers with shard-local caches) under the same closed loop, with the
clients spread across ``--tenants`` tenant identities.  Every response
is compared byte-for-byte against a direct engine run, and per-tenant
served counts feed a no-starvation gate (min/max served ratio).  The
gateway hop relaxes the warm-p50 gate (one forwarded HTTP round trip
per request) but adds gates of its own: zero wrong bytes and no
starved tenant.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import pathlib
import platform
import statistics
import sys
import tempfile
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_service.json"

#: Serialization format tag for the benchmark history file.
BENCH_FORMAT = "repro-bench-service-v1"

#: Request mix: small kernels, both modes, tiny scale.
MIX = (
    {"workload": "vecadd", "mode": "dyser", "scale": "tiny"},
    {"workload": "vecadd", "mode": "scalar", "scale": "tiny"},
    {"workload": "saxpy", "mode": "dyser", "scale": "tiny"},
    {"workload": "dotprod", "mode": "dyser", "scale": "tiny"},
)

#: Acceptance gates (see ISSUE 5 / CI bench-smoke).
WARM_P50_LIMIT_MS = 10.0

#: Gateway-mode gates (ISSUE 9): the forwarded hop buys one extra
#: HTTP round trip per request, so the latency gate is looser; in
#: exchange the run must be byte-perfect and starvation-free.
GATEWAY_WARM_P50_LIMIT_MS = 50.0
GATEWAY_MIN_REQUESTS = 2000
TENANT_FAIRNESS_FLOOR = 0.5


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _latency_summary(latencies_ms: list[float],
                     wall_s: float) -> dict:
    return {
        "requests": len(latencies_ms),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(latencies_ms) / wall_s, 1)
        if wall_s else 0.0,
        "p50_ms": round(_percentile(latencies_ms, 0.50), 3),
        "p95_ms": round(_percentile(latencies_ms, 0.95), 3),
        "p99_ms": round(_percentile(latencies_ms, 0.99), 3),
        "mean_ms": round(statistics.fmean(latencies_ms), 3),
        "max_ms": round(max(latencies_ms), 3),
    }


def _spec_key(spec: dict) -> str:
    return f"{spec['workload']}/{spec['mode']}"


def _closed_loop(port: int, requests: int, clients: int, *,
                 tenants: int = 0,
                 expected: dict[str, str] | None = None) -> dict:
    """``clients`` threads issue ``requests`` total, one at a time each.

    With ``tenants`` > 0 client *i* identifies as ``tenant-{i % n}``
    and per-tenant served counts are recorded.  With ``expected``
    (spec key -> canonical result JSON) every OK response is checked
    byte-for-byte and mismatches counted as ``wrong_bytes``.
    """
    from repro.service import Client

    latencies: list[float] = []
    statuses: dict[str, int] = {}
    served_by_tenant: dict[str, int] = {}
    errors: list[str] = []
    wrong_bytes = 0
    lock = threading.Lock()
    counter = iter(range(requests))

    def worker(slot: int) -> None:
        nonlocal wrong_bytes
        tenant = f"tenant-{slot % tenants}" if tenants else None
        client = Client(port=port, timeout=120, retries=3,
                        tenant=tenant)
        with client:
            while True:
                with lock:
                    i = next(counter, None)
                if i is None:
                    return
                spec = MIX[i % len(MIX)]
                t0 = time.perf_counter()
                try:
                    reply = client.execute(spec, raise_on_error=False)
                except Exception as exc:  # noqa: BLE001 - recorded
                    with lock:
                        errors.append(f"{type(exc).__name__}: {exc}")
                    continue
                dt_ms = (time.perf_counter() - t0) * 1e3
                parity_ok = True
                if expected is not None and reply.get("ok"):
                    canon = json.dumps(reply.get("result"),
                                       sort_keys=True)
                    parity_ok = canon == expected[_spec_key(spec)]
                with lock:
                    latencies.append(dt_ms)
                    status = reply.get("status", "no-status")
                    statuses[status] = statuses.get(status, 0) + 1
                    if tenant is not None and reply.get("ok"):
                        served_by_tenant[tenant] = \
                            served_by_tenant.get(tenant, 0) + 1
                    if not parity_ok:
                        wrong_bytes += 1
                    if not reply.get("ok"):
                        errors.append(f"{spec['workload']}: {status} "
                                      f"{reply.get('error')}")

    threads = [threading.Thread(target=worker, args=(slot,),
                                daemon=True)
               for slot in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    summary = _latency_summary(latencies, wall_s)
    summary["statuses"] = {k: statuses[k] for k in sorted(statuses)}
    summary["dropped"] = (requests - len(latencies)) + len(errors)
    summary["errors"] = errors[:10]
    if expected is not None:
        summary["wrong_bytes"] = wrong_bytes
    if tenants:
        summary["served_by_tenant"] = {
            k: served_by_tenant[k] for k in sorted(served_by_tenant)}
    return summary


def measure(requests: int = 200, clients: int = 4) -> dict:
    """One benchmark entry: cold warm-up pass + warm closed-loop run."""
    from repro.engine.cache import ArtifactCache
    from repro.service import Client, ServiceThread

    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
        cache = ArtifactCache(tmp)
        with ServiceThread(cache=cache, queue_limit=max(64, clients * 4),
                           batch_window_s=0.001) as srv:
            # Cold pass: every spec in the mix takes the full path once
            # (compile + fast-backend run + artifact store).
            cold_latencies = []
            with Client(port=srv.port, timeout=300) as client:
                for spec in MIX:
                    t0 = time.perf_counter()
                    reply = client.execute(spec)
                    cold_latencies.append(
                        (time.perf_counter() - t0) * 1e3)
                    assert reply["status"] == "executed", reply
            cold = _latency_summary(cold_latencies, sum(cold_latencies)
                                    / 1e3)
            # Warm closed loop: all answered from the artifact cache.
            warm = _closed_loop(srv.port, requests, clients)
            with Client(port=srv.port) as client:
                metrics_ok = client.metrics_text() \
                    .count("# TYPE repro_service") >= 5
                health = client.health()
    return {
        "date": _dt.date.today().isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "requests": requests,
        "clients": clients,
        "mix": len(MIX),
        "cold": cold,
        "warm": warm,
        "metrics_exposition_ok": metrics_ok,
        "requests_served": health["requests_served"],
    }


def _expected_results() -> dict[str, str]:
    """Canonical direct-run bytes per spec key (the parity oracle)."""
    from repro import RunConfig, run_workload
    from repro.engine import result_to_dict

    return {
        _spec_key(spec): json.dumps(
            result_to_dict(run_workload(RunConfig(**spec))),
            sort_keys=True)
        for spec in MIX
    }


def measure_gateway(requests: int = 2000, clients: int = 8,
                    workers: int = 2, tenants: int = 4) -> dict:
    """One gateway-mode entry: sharded fleet, tenants, byte parity."""
    import contextlib

    from repro.engine.cache import ArtifactCache
    from repro.service import Client, ServiceThread
    from repro.service.gateway import _GatewayServiceThread

    expected = _expected_results()
    with tempfile.TemporaryDirectory(prefix="repro-bench-gw-") as tmp:
        root = pathlib.Path(tmp)
        # Workers keep shard-local caches; the gateway itself runs
        # cache-less so every measured request crosses the forward hop.
        fleet: list[ServiceThread] = []
        gateway = None
        try:
            for i in range(workers):
                shard = ServiceThread(
                    cache=ArtifactCache(root / f"shard-{i}"),
                    batch_window_s=0.001,
                    queue_limit=max(64, clients * 4))
                shard.start()
                fleet.append(shard)
            gateway = _GatewayServiceThread(
                workers=[f"{w.host}:{w.port}" for w in fleet],
                cache=None, journal=root / "gateway-jobs.jsonl")
            gateway.start()
            cold_latencies = []
            with Client(port=gateway.port, timeout=300) as client:
                for spec in MIX:
                    t0 = time.perf_counter()
                    reply = client.execute(spec)
                    cold_latencies.append(
                        (time.perf_counter() - t0) * 1e3)
                    assert reply["status"] == "executed", reply
            cold = _latency_summary(cold_latencies, sum(cold_latencies)
                                    / 1e3)
            warm = _closed_loop(gateway.port, requests, clients,
                                tenants=tenants, expected=expected)
            with Client(port=gateway.port) as client:
                metrics_ok = client.metrics_text() \
                    .count("# TYPE repro_service") >= 5
                health = client.health()
        finally:
            if gateway is not None:
                gateway.shutdown(timeout=60)
            for shard in fleet:
                with contextlib.suppress(RuntimeError):
                    shard.shutdown(timeout=60)
    served = warm.get("served_by_tenant", {})
    fairness = (min(served.values()) / max(served.values())
                if served and max(served.values()) else 0.0)
    return {
        "date": _dt.date.today().isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "kind": "gateway",
        "requests": requests,
        "clients": clients,
        "workers": workers,
        "tenants": tenants,
        "mix": len(MIX),
        "cold": cold,
        "warm": warm,
        "tenant_fairness": round(fairness, 3),
        "metrics_exposition_ok": metrics_ok,
        "ring_size": health.get("ring_size"),
        "requests_served": health["requests_served"],
    }


def validate(doc: dict) -> None:
    """Acceptance gates for a history document (raises on violation)."""
    assert doc.get("format") == BENCH_FORMAT, \
        f"bad format tag {doc.get('format')!r}"
    entries = doc.get("entries")
    assert entries, "no benchmark entries"
    for entry in entries:
        warm = entry["warm"]
        is_gateway = entry.get("kind") == "gateway"
        p50_limit = (GATEWAY_WARM_P50_LIMIT_MS if is_gateway
                     else WARM_P50_LIMIT_MS)
        assert warm["dropped"] == 0, \
            f"{entry['date']}: {warm['dropped']} dropped requests"
        assert warm["p50_ms"] < p50_limit, \
            (f"{entry['date']}: warm p50 {warm['p50_ms']}ms over the "
             f"{p50_limit}ms gate")
        assert entry.get("metrics_exposition_ok"), \
            f"{entry['date']}: /metrics exposition failed to parse"
        if is_gateway:
            assert entry["requests"] >= GATEWAY_MIN_REQUESTS, \
                (f"{entry['date']}: gateway run of "
                 f"{entry['requests']} requests under the "
                 f"{GATEWAY_MIN_REQUESTS} floor")
            assert warm.get("wrong_bytes") == 0, \
                (f"{entry['date']}: {warm.get('wrong_bytes')} "
                 f"responses differed from the direct run")
            assert entry["tenant_fairness"] >= TENANT_FAIRNESS_FLOOR, \
                (f"{entry['date']}: tenant fairness "
                 f"{entry['tenant_fairness']} under the "
                 f"{TENANT_FAIRNESS_FLOOR} no-starvation floor: "
                 f"{warm.get('served_by_tenant')}")


def _render(entry: dict) -> str:
    warm, cold = entry["warm"], entry["cold"]
    head = (f"service closed loop: {entry['requests']} requests, "
            f"{entry['clients']} clients")
    if entry.get("kind") == "gateway":
        head = (f"gateway closed loop: {entry['requests']} requests, "
                f"{entry['clients']} clients over "
                f"{entry['workers']} workers, "
                f"{entry['tenants']} tenants")
    text = (
        f"{head}\n"
        f"  warm (artifact-cache dispatch): "
        f"p50={warm['p50_ms']}ms p95={warm['p95_ms']}ms "
        f"p99={warm['p99_ms']}ms, {warm['throughput_rps']} req/s, "
        f"{warm['dropped']} dropped\n"
        f"  cold (compile + fast backend):  "
        f"p50={cold['p50_ms']}ms max={cold['max_ms']}ms "
        f"({entry['mix']} specs)\n"
        f"  statuses: {warm['statuses']}"
    )
    if entry.get("kind") == "gateway":
        text += (f"\n  parity: {warm.get('wrong_bytes')} wrong bytes; "
                 f"tenant fairness {entry['tenant_fairness']} "
                 f"{warm.get('served_by_tenant')}")
    return text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=None,
                        help="closed-loop request count "
                             "(default 200; 2000 with --workers)")
    parser.add_argument("--clients", type=int, default=None,
                        help="concurrent closed-loop clients "
                             "(default 4; 8 with --workers)")
    parser.add_argument("--workers", type=int, default=0,
                        help="benchmark a sharded gateway over N "
                             "workers instead of a single daemon")
    parser.add_argument("--tenants", type=int, default=4,
                        help="tenant identities in gateway mode")
    parser.add_argument("--check", action="store_true",
                        help="measure and gate without writing history")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write history here instead of "
                             "BENCH_service.json")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    if args.workers > 0:
        entry = measure_gateway(
            requests=args.requests or 2000,
            clients=args.clients or 8,
            workers=args.workers, tenants=args.tenants)
    else:
        entry = measure(requests=args.requests or 200,
                        clients=args.clients or 4)
    print(_render(entry))

    if args.check:
        validate({"format": BENCH_FORMAT, "entries": [entry]})
        p50_limit = (GATEWAY_WARM_P50_LIMIT_MS if args.workers
                     else WARM_P50_LIMIT_MS)
        print("service bench gates OK "
              f"(warm p50 {entry['warm']['p50_ms']}ms < "
              f"{p50_limit}ms, 0 dropped)")
        return 0

    path = pathlib.Path(args.output) if args.output else BENCH_PATH
    doc = {"format": BENCH_FORMAT, "entries": []}
    if path.exists():
        doc = json.loads(path.read_text())
    doc["entries"].append(entry)
    validate(doc)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"appended to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
