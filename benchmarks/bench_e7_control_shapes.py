"""E7 — Control-flow shape study (paper finding ii).

For non-computationally-intense irregular code, two control-flow shapes
curtail the compiler's effectiveness.  As reconstructed (DESIGN.md):

1. LOOP_CARRIED_CONTROL — the loop's continue condition consumes data
   the loop body just produced: invocations serialize, so speedup stays
   near 1x (newton_lcd, kmeans' argmin loop).
2. DEEP_DIAMONDS — long chains of data-dependent diamonds: if-conversion
   executes every path, so the fabric's *useful-op density* collapses
   even when wall-clock still improves (collatz_diamonds); and when the
   computation exists only to form an address, no execute slice survives
   at all (tpacf_bin).

The table reports, per shape, the classification, speedup, and the
fraction of fabric work that is architecturally useful.
"""

from common import SCALE, emit, once

import numpy as np

from repro.harness import compare, format_table
from repro.workloads import get

CASES = ("saxpy", "mriq", "kmeans", "newton_lcd", "collatz_diamonds",
         "tpacf_bin")

#: Architecturally useful ops per work item (hand-counted from each
#: kernel's semantics: ops on the taken path only).
USEFUL_OPS_PER_ITEM = {
    "saxpy": 2.0,
    "mriq": 16.0,
    "kmeans": 5.0,
    "newton_lcd": 6.0,
    # Collatz: one side of each diamond is real work; the other half plus
    # the predicate network is waste.
    "collatz_diamonds": 2.0 * 4,
    "tpacf_bin": 3.0,
}


def measure():
    rows = []
    stats = {}
    for name in CASES:
        c = compare(name, scale=SCALE)
        assert c.scalar.correct and c.dyser.correct, name
        region = c.dyser.compile_result.regions[0]
        fu_ops = c.dyser.stats.dyser_fu_ops
        items = c.dyser.work_items
        useful = USEFUL_OPS_PER_ITEM[name] * items
        density = min(1.0, useful / fu_ops) if fu_ops else 0.0
        stats[name] = (c.speedup, density, region)
        rows.append([
            name, get(name).category, region.shape,
            "yes" if region.accepted else "no",
            f"{c.speedup:.2f}x",
            f"{density:.0%}" if fu_ops else "-",
            region.reason[:40],
        ])
    return rows, stats


def test_e7_control_shapes(benchmark):
    rows, stats = once(benchmark, measure)
    table = format_table(
        ["benchmark", "category", "shape", "offloaded", "speedup",
         "useful-op density", "note"],
        rows,
        title="E7: control-flow shapes that curtail the compiler",
    )
    emit("E7: control shapes", table)

    speedup = {name: s for name, (s, _d, _r) in stats.items()}
    density = {name: d for name, (_s, d, _r) in stats.items()}
    shapes = {name: r.shape for name, (_s, _d, r) in stats.items()}

    assert shapes["newton_lcd"] == "loop_carried_control"
    assert shapes["collatz_diamonds"] == "deep_diamonds"
    # Shape 1: carried control caps the win far below regular kernels.
    assert speedup["newton_lcd"] < speedup["saxpy"] / 3
    # Shape 2a: deep diamonds waste most fabric work.
    assert density["collatz_diamonds"] < 0.7 < density["saxpy"]
    # Shape 2b: address-forming computation leaves nothing to offload.
    assert speedup["tpacf_bin"] == 1.0
