"""Simulator speed: fast backend vs the reference core.

Two entry points:

- ``pytest benchmarks/bench_sim_speed.py --benchmark-only`` measures the
  suite on both backends and archives the table under ``results/``;
- ``python benchmarks/bench_sim_speed.py`` runs the same measurement
  from the command line and appends a machine-readable entry to
  ``BENCH_sim_speed.json`` (the committed history of the speedup
  acceptance criterion); ``--batched`` measures the batched lockstep
  backend on a timing-knob sweep instead (reference vs fast vs
  batched, recorded under ``batched_entries`` and gated at
  :data:`BATCHED_MIN_SPEEDUP` by :func:`validate_batched_gate`);
  ``--check`` runs the differential parity harnesses instead — solo
  and batched — with no timing (CI's bench-smoke gate).

Methodology: every (workload, mode) config is executed once per backend
after a compile warm-up pass, so the numbers compare *simulation* time,
not compilation.  Parity is asserted on the exact configs measured —
a timing table for a backend that disagrees with the oracle would be
meaningless.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_sim_speed.json"

#: Serialization format tag for the benchmark history file.
BENCH_FORMAT = "repro-bench-sim-speed-v1"

#: CI smoke pair: one regular kernel, one with control flow.
SMOKE_WORKLOADS = ("mm", "fir")

#: The batched-sweep measurement: per workload, a lane of timing-knob
#: points (FIFO depth x initiation interval x vector port rate) — the
#: shape ``repro sweep --backend batched`` produces, and exactly what
#: the lockstep backend exists to accelerate.
BATCH_WORKLOADS = ("mm", "fir", "conv2d", "spmv")
BATCH_DEPTHS = (2, 4, 8)
BATCH_INTERVALS = (1, 2)
BATCH_RATES = (1, 2, 4)

#: Acceptance floor for the committed batched entry (vs reference).
BATCHED_MIN_SPEEDUP = 10.0


def _configs(workloads, scale):
    from repro.harness import RunConfig

    return [RunConfig(workload=w, mode=m, scale=scale)
            for w in workloads for m in ("scalar", "dyser")]


def _batched_configs(workloads, scale):
    from repro.cpu import CoreConfig
    from repro.dyser import DyserTimingParams
    from repro.harness import RunConfig

    return [
        RunConfig(
            workload=w, mode="dyser", scale=scale, backend="batched",
            timing=DyserTimingParams(input_fifo_depth=depth,
                                     output_fifo_depth=depth,
                                     initiation_interval=interval),
            core_config=CoreConfig(vector_port_words_per_cycle=rate),
        )
        for w in workloads
        for depth in BATCH_DEPTHS
        for interval in BATCH_INTERVALS
        for rate in BATCH_RATES
    ]


def _time_backend(configs, backend: str) -> float:
    from repro.harness import execute

    started = time.perf_counter()
    for config in configs:
        result = execute(config.with_(backend=backend))
        assert result.correct, config.describe()
    return time.perf_counter() - started


def measure(workloads=None, scale: str = "small") -> dict:
    """One benchmark entry: parity check + wall time per backend."""
    from repro.harness import verify_parity
    from repro.workloads import names

    workloads = tuple(workloads or names())
    configs = _configs(workloads, scale)

    report = verify_parity(configs)
    if not report.ok:
        raise AssertionError(report.summary())

    # Warm the compile cache so both timings measure simulation only.
    _time_backend(_configs(workloads, "tiny"), "fast")

    reference_s = _time_backend(configs, "reference")
    fast_s = _time_backend(configs, "fast")
    return {
        "date": _dt.date.today().isoformat(),
        "scale": scale,
        "workloads": len(workloads),
        "runs": len(configs),
        "parity_checked": report.checked,
        "reference_s": round(reference_s, 3),
        "fast_s": round(fast_s, 3),
        "speedup": round(reference_s / fast_s, 2),
        "python": platform.python_version(),
    }


def measure_batched(workloads=None, scale: str = "small") -> dict:
    """One batched-sweep entry: the same config grid through all three
    backends, with every batched payload asserted byte-identical to
    its solo reference run before any timing is trusted."""
    from repro.harness import execute
    from repro.harness.batch import execute_batch

    workloads = tuple(workloads or BATCH_WORKLOADS)
    configs = _batched_configs(workloads, scale)

    # Warm the compile cache so the timings measure simulation only.
    for config in _batched_configs(workloads, "tiny"):
        execute(config.with_(backend="fast"))

    def timed_solo(backend):
        started = time.perf_counter()
        results = [execute(c.with_(backend=backend)) for c in configs]
        return time.perf_counter() - started, results

    reference_s, reference = timed_solo("reference")
    fast_s, _ = timed_solo("fast")
    started = time.perf_counter()
    outcomes = execute_batch(configs)
    batched_s = time.perf_counter() - started

    for config, ref, outcome in zip(configs, reference, outcomes):
        assert outcome.result is not None, config.describe()
        assert outcome.result.to_dict() == ref.to_dict(), (
            f"batched diverges from reference: {config.describe()}")

    return {
        "date": _dt.date.today().isoformat(),
        "scale": scale,
        "workloads": len(workloads),
        "runs": len(configs),
        "parity_checked": len(configs),
        "reference_s": round(reference_s, 3),
        "fast_s": round(fast_s, 3),
        "batched_s": round(batched_s, 3),
        "speedup_vs_reference": round(reference_s / batched_s, 2),
        "speedup_vs_fast": round(fast_s / batched_s, 2),
        "python": platform.python_version(),
    }


def validate(document: dict) -> None:
    """Schema check for a BENCH_sim_speed.json document."""
    assert document.get("format") == BENCH_FORMAT, document.get("format")
    entries = document["entries"]
    assert entries, "no benchmark entries"
    for entry in entries:
        for key in ("date", "scale", "workloads", "runs",
                    "parity_checked", "reference_s", "fast_s", "speedup"):
            assert key in entry, f"entry missing {key!r}: {entry}"
        assert entry["fast_s"] > 0 and entry["reference_s"] > 0
        assert entry["parity_checked"] == entry["runs"]
        assert entry["speedup"] > 1.0, (
            f"fast backend slower than reference: {entry}")
    for entry in document.get("batched_entries", ()):
        for key in ("date", "scale", "workloads", "runs",
                    "parity_checked", "reference_s", "fast_s",
                    "batched_s", "speedup_vs_reference",
                    "speedup_vs_fast"):
            assert key in entry, f"batched entry missing {key!r}: {entry}"
        assert entry["batched_s"] > 0
        assert entry["parity_checked"] == entry["runs"]
        assert entry["speedup_vs_reference"] > 1.0, (
            f"batched backend slower than reference: {entry}")


def validate_batched_gate(document: dict,
                          minimum: float = BATCHED_MIN_SPEEDUP) -> None:
    """The committed-history acceptance gate: a batched-sweep entry
    must exist and hold the >=10x speedup over the reference core."""
    validate(document)
    entries = document.get("batched_entries")
    assert entries, "no batched-sweep entry in the committed history"
    latest = entries[-1]
    assert latest["speedup_vs_reference"] >= minimum, (
        f"batched sweep speedup {latest['speedup_vs_reference']}x "
        f"is below the {minimum}x acceptance floor: {latest}")


def _render(entry: dict) -> str:
    from repro.harness import format_table

    rows = [
        ["reference", f"{entry['reference_s']:.3f}", "1.00x"],
        ["fast", f"{entry['fast_s']:.3f}", f"{entry['speedup']:.2f}x"],
    ]
    return format_table(
        ["backend", "wall s", "speedup"], rows,
        title=(f"simulator speed @ {entry['scale']} "
               f"({entry['runs']} runs, parity-checked)"))


def _render_batched(entry: dict) -> str:
    from repro.harness import format_table

    rows = [
        ["reference", f"{entry['reference_s']:.3f}", "1.00x"],
        ["fast", f"{entry['fast_s']:.3f}",
         f"{entry['reference_s'] / entry['fast_s']:.2f}x"],
        ["batched", f"{entry['batched_s']:.3f}",
         f"{entry['speedup_vs_reference']:.2f}x"],
    ]
    return format_table(
        ["backend", "wall s", "speedup"], rows,
        title=(f"batched sweep @ {entry['scale']} "
               f"({entry['runs']} points, parity-checked)"))


def test_sim_speed(benchmark):
    """E-series style wrapper: measure once, archive the table."""
    from common import emit, once

    entry = once(benchmark, lambda: measure(scale="small"))
    emit("SIM_SPEED: fast backend vs reference", _render(entry))
    assert entry["speedup"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workloads", nargs="*",
                        help="workloads to measure (default: whole suite)")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--check", action="store_true",
                        help="run the parity harnesses only (no "
                             "timing): solo fast-vs-reference plus a "
                             "batched sweep; defaults to the CI smoke "
                             "pair")
    parser.add_argument("--batched", action="store_true",
                        help="measure the batched-sweep entry instead "
                             "of the solo backend comparison")
    parser.add_argument("--output", default=str(BENCH_PATH),
                        help="benchmark history JSON to append to")
    args = parser.parse_args(argv)

    if args.check:
        from repro.harness import verify_batch_parity, verify_parity

        workloads = tuple(args.workloads) or SMOKE_WORKLOADS
        report = verify_parity(_configs(workloads, args.scale))
        print(report.summary())
        batch_report = verify_batch_parity(
            _batched_configs(workloads, args.scale))
        print(batch_report.summary())
        return 0 if report.ok and batch_report.ok else 1

    if args.batched:
        entry = measure_batched(args.workloads or None,
                                scale=args.scale)
        print(_render_batched(entry))
    else:
        entry = measure(args.workloads or None, scale=args.scale)
        print(_render(entry))

    path = pathlib.Path(args.output)
    if path.exists():
        document = json.loads(path.read_text())
        validate(document)
    else:
        document = {"format": BENCH_FORMAT, "entries": []}
    key = "batched_entries" if args.batched else "entries"
    document.setdefault(key, []).append(entry)
    validate(document)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\nrecorded in {path}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())
