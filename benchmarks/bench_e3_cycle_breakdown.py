"""E3 — Cycle breakdown: where the speedup comes from.

The paper's microarchitecture analysis decomposes execution time.  For a
representative subset we report, for scalar and DySER builds, the cycle
accounting (issue slots vs each stall class) — showing that DySER's win
is eliminated fetch/decode/issue slots for computation plus removal of
the FPU serialization, while its own overheads (send/recv/config stalls)
stay small.
"""

from common import SCALE, emit, once

from repro import RunConfig, format_table, run_workload

KERNELS = ("saxpy", "dotprod", "mriq", "nbody", "newton_lcd")


def breakdowns():
    rows = []
    raw = {}
    for name in KERNELS:
        for mode in ("scalar", "dyser"):
            result = run_workload(
                RunConfig(workload=name, mode=mode, scale=SCALE))
            assert result.correct, (name, mode)
            bd = result.stats.breakdown()
            total = result.cycles
            raw[(name, mode)] = (result, bd)
            rows.append([
                name, mode, total,
                f"{bd.get('issue', 0) / total:.0%}",
                f"{bd.get('structural_fpu', 0) / total:.0%}",
                f"{bd.get('data_hazard', 0) / total:.0%}",
                f"{(bd.get('load_miss', 0) + bd.get('fetch_miss', 0)) / total:.0%}",
                f"{bd.get('branch', 0) / total:.0%}",
                f"{(bd.get('dyser_send', 0) + bd.get('dyser_recv', 0)) / total:.0%}",
                f"{bd.get('dyser_config', 0) / total:.0%}",
            ])
    return rows, raw


def test_e3_cycle_breakdown(benchmark):
    rows, raw = once(benchmark, breakdowns)
    table = format_table(
        ["benchmark", "build", "cycles", "issue", "fpu", "hazard",
         "miss", "branch", "dyser_flow", "config"],
        rows,
        title="E3: cycle accounting, scalar vs SPARC-DySER",
    )
    emit("E3: cycle breakdown", table)

    scalar_fpu_total = 0
    dyser_fpu_total = 0
    for name in ("saxpy", "mriq"):
        scalar_stats = raw[(name, "scalar")][0].stats
        dyser_stats = raw[(name, "dyser")][0].stats
        # Fewer issue slots: computation left the host pipeline.
        assert dyser_stats.issue_cycles < scalar_stats.issue_cycles / 2
        scalar_fpu_total += raw[(name, "scalar")][1].get(
            "structural_fpu", 0)
        dyser_fpu_total += raw[(name, "dyser")][1].get(
            "structural_fpu", 0)
        # Integration overheads stay modest: config stalls are a sliver.
        config = raw[(name, "dyser")][1].get("dyser_config", 0)
        assert config < 0.05 * dyser_stats.cycles + 100
    # The scalar builds serialize on the shared FPU; DySER removes it.
    assert scalar_fpu_total > 0
    assert dyser_fpu_total < scalar_fpu_total / 4
