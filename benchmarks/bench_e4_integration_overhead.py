"""E4 — Integration overhead.

Abstract claim: "the integration of DySER does not introduce overheads".
We run scalar-only code on (a) the plain core and (b) the DySER-aware
core with the device attached but never used, and check the cycle counts
are identical — the extension unit sits off the scalar pipeline's paths.
We also report the scalar-code delta between a core compiled *with* the
interface and one without (zero in our model, mirroring the prototype's
measurement that scalar IPC was unchanged).
"""

from common import SCALE, emit, once

from repro.compiler import compile_scalar
from repro.cpu import Core, CoreConfig, Memory
from repro.dyser import DyserDevice, Fabric, FabricGeometry
from repro.harness import format_table
from repro.workloads import SUITE, get

KERNELS = ("vecadd", "mm", "needle", "collatz_diamonds", "spmv")


def measure():
    rows = []
    for name in KERNELS:
        workload = get(name)
        program = compile_scalar(workload.source).program
        cycles = {}
        for config_name, has_dyser in (("plain", False), ("dyser-aware", True)):
            memory = Memory(1 << 22)
            instance = workload.prepare(memory, SCALE, 7)
            device = DyserDevice(fabric=Fabric(FabricGeometry(8, 8))) \
                if has_dyser else None
            core = Core(program, memory, dyser=device,
                        config=CoreConfig(has_dyser=has_dyser))
            core.set_args(instance.int_args, instance.fp_args)
            stats = core.run()
            assert instance.check(memory), (name, config_name)
            cycles[config_name] = stats.cycles
        delta = (cycles["dyser-aware"] - cycles["plain"]) / cycles["plain"]
        rows.append([name, cycles["plain"], cycles["dyser-aware"],
                     f"{delta:+.2%}"])
    return rows


def test_e4_integration_overhead(benchmark):
    rows = once(benchmark, measure)
    table = format_table(
        ["benchmark", "plain core", "DySER-aware core", "delta"],
        rows,
        title="E4: scalar code on plain vs DySER-integrated core",
    )
    emit("E4: integration overhead", table)
    # Paper shape: no overhead (<= ~1%; exactly 0 in our model).
    for row in rows:
        assert abs(row[1] - row[2]) <= 0.01 * row[1], row
