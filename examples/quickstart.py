#!/usr/bin/env python
"""Quickstart: compile a kernel for SPARC-DySER and watch it beat the
scalar build.

Runs a SAXPY kernel through the whole stack — kernel language, the
co-designed compiler (region selection, if-conversion, unrolling, wide
ports, spatial scheduling), the in-order core model, and the DySER
fabric — and prints cycles, speedup and where the win comes from.
"""

import numpy as np

from repro.compiler import compile_dyser, compile_scalar
from repro.cpu import Core, Memory
from repro.dyser import DyserDevice, Fabric, FabricGeometry

KERNEL = """
kernel saxpy(out float y[], float x[], int n, float a) {
    for (int i = 0; i < n; i = i + 1) {
        y[i] = a * x[i] + y[i];
    }
}
"""


def run(program, n, a, x, y, device=None):
    memory = Memory(1 << 22)
    py = memory.alloc_numpy(y)
    px = memory.alloc_numpy(x)
    core = Core(program, memory, dyser=device)
    core.set_args((py, px, n), (a,))
    stats = core.run()
    result = memory.read_numpy(py, n)
    return stats, result


def main() -> None:
    n, a = 512, 2.5
    rng = np.random.default_rng(42)
    x, y = rng.random(n), rng.random(n)
    expected = a * x + y

    scalar = compile_scalar(KERNEL)
    scalar_stats, scalar_out = run(scalar.program, n, a, x, y)
    assert np.allclose(scalar_out, expected)

    dyser = compile_dyser(KERNEL)
    device = DyserDevice(fabric=Fabric(FabricGeometry(8, 8)))
    dyser_stats, dyser_out = run(dyser.program, n, a, x, y, device)
    assert np.allclose(dyser_out, expected)

    print("compiler region decisions:")
    for region in dyser.regions:
        print(f"  loop {region.loop_header}: {region.reason} "
              f"(shape={region.shape}, unroll={region.unrolled}, "
              f"execute ops={region.execute_ops})")
    print()
    print(f"scalar OpenSPARC : {scalar_stats.cycles:>8} cycles, "
          f"{scalar_stats.instructions} instructions")
    print(f"SPARC-DySER      : {dyser_stats.cycles:>8} cycles, "
          f"{dyser_stats.instructions} instructions, "
          f"{dyser_stats.dyser_invocations} fabric invocations")
    print(f"speedup          : "
          f"{scalar_stats.cycles / dyser_stats.cycles:.2f}x")
    print()
    print("DySER-side dynamic behaviour:")
    print(" ", dyser_stats.summary().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
