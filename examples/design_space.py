#!/usr/bin/env python
"""Design-space walk: fabric geometry vs performance, power and area.

For a compute-heavy kernel (the MRI-Q-style accumulation), sweeps the
fabric from 2x2 to 8x8 and reports speedup, DySER block power, and the
FPGA resource bill — the trade study an architect would run before
committing to a configuration.
"""

from repro.compiler import CompilerOptions
from repro.dyser import Fabric, FabricGeometry
from repro.fpga import dyser_resources
from repro.harness import compare, format_table


def main() -> None:
    rows = []
    for width, height in ((2, 2), (4, 4), (6, 6), (8, 8)):
        fabric = Fabric(FabricGeometry(width, height))
        options = CompilerOptions(fabric=fabric)
        comparison = compare("mriq", scale="small", options=options)
        assert comparison.scalar.correct and comparison.dyser.correct
        block = dyser_resources(fabric)
        region = comparison.dyser.compile_result.regions[0]
        rows.append([
            f"{width}x{height}",
            "yes" if region.accepted else "no",
            region.unrolled,
            f"{comparison.speedup:.2f}x",
            f"{comparison.dyser.energy.dyser_power_mw:.0f}",
            block.resources.luts,
            block.resources.dsps,
            f"{comparison.edp_ratio:.1f}x",
        ])
    print(format_table(
        ["fabric", "offloaded", "unroll", "speedup", "dyser mW",
         "LUTs", "DSPs", "EDP gain"],
        rows,
        title="mriq across DySER fabric sizes",
    ))
    print()
    print("Reading: the polynomial region does not fit the small fabrics"
          " at all; once it fits, extra area buys unrolling headroom"
          " until the port interface saturates.")


if __name__ == "__main__":
    main()
