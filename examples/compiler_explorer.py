#!/usr/bin/env python
"""Compiler explorer: watch a kernel travel through every stage.

Prints, for a small conditional kernel: the SSA IR after cleanup, the
region decision, the DySER dataflow graph (with its placement on the
fabric), the configuration's derived hardware metrics, and the final
SPARC-DySER assembly listing.
"""

from repro.compiler import compile_dyser
from repro.compiler.driver import frontend

KERNEL = """
kernel relu_scale(out float y[], float x[], int n, float a) {
    for (int i = 0; i < n; i = i + 1) {
        float v = a * x[i];
        if (v < 0.0) { v = 0.0; }
        y[i] = v;
    }
}
"""


def main() -> None:
    print("=" * 70)
    print("1. SSA IR after frontend cleanup")
    print("=" * 70)
    print(frontend(KERNEL).dump())

    result = compile_dyser(KERNEL)

    print()
    print("=" * 70)
    print("2. Region decisions")
    print("=" * 70)
    for region in result.regions:
        print(f"loop {region.loop_header}: accepted={region.accepted} "
              f"shape={region.shape} unroll={region.unrolled} "
              f"vectorized={region.vectorized}")
        print(f"  execute ops={region.execute_ops} "
              f"ports in/out={region.input_ports}/{region.output_ports}")

    for config_id, config in result.program.dyser_configs.items():
        print()
        print("=" * 70)
        print(f"3. DySER configuration #{config_id}")
        print("=" * 70)
        print(config.dfg.describe())
        print()
        print("placement (node -> FU):")
        for node_id, fu in sorted(config.placement.items()):
            op = config.dfg.nodes[node_id].op.value
            print(f"  n{node_id:<3} {op:<6} -> FU{fu}")
        delays = config.path_delays()
        print(f"per-output path delays: {delays} cycles")
        print(f"configuration size: {config.config_words()} words")
        print(f"switch links used: {config.used_switch_links()}")

    print()
    print("=" * 70)
    print("4. SPARC-DySER assembly")
    print("=" * 70)
    print(result.program.listing())


if __name__ == "__main__":
    main()
