#!/usr/bin/env python
"""Bring your own kernel: write it, compile it both ways, check it,
profile it.

This example implements a complex-magnitude + thresholding kernel that
is not part of the benchmark suite, demonstrating the workflow a user
follows for new code: numpy reference, both builds, correctness check,
then the cycle/energy comparison and the compiler's own report.
"""

import numpy as np

from repro.compiler import compile_dyser, compile_scalar
from repro.cpu import Core, Memory
from repro.dyser import DyserDevice, Fabric, FabricGeometry
from repro.energy import EnergyModel, EnergyParams

KERNEL = """
kernel cmag_clip(out float m[], float re[], float im[], int n,
                 float lim) {
    for (int i = 0; i < n; i = i + 1) {
        float mag = sqrt(re[i] * re[i] + im[i] * im[i]);
        m[i] = min(mag, lim);
    }
}
"""


def run_build(program, args, fp_args, device=None):
    memory = Memory(1 << 22)
    pm = memory.alloc(args["n"])
    pre = memory.alloc_numpy(args["re"])
    pim = memory.alloc_numpy(args["im"])
    core = Core(program, memory, dyser=device)
    core.set_args((pm, pre, pim, args["n"]), fp_args)
    stats = core.run()
    return stats, memory.read_numpy(pm, args["n"])


def main() -> None:
    n, lim = 384, 1.2
    rng = np.random.default_rng(11)
    re, im = rng.random(n) * 2 - 1, rng.random(n) * 2 - 1
    expected = np.minimum(np.hypot(re, im), lim)
    args = {"n": n, "re": re, "im": im}

    scalar = compile_scalar(KERNEL)
    s_stats, s_out = run_build(scalar.program, args, (lim,))
    np.testing.assert_allclose(s_out, expected, rtol=1e-9)

    dyser = compile_dyser(KERNEL)
    d_stats, d_out = run_build(
        dyser.program, args, (lim,),
        device=DyserDevice(fabric=Fabric(FabricGeometry(8, 8))))
    np.testing.assert_allclose(d_out, expected, rtol=1e-9)

    (region,) = dyser.regions
    print(f"region: {region.reason}, shape={region.shape}, "
          f"unroll={region.unrolled}, execute ops={region.execute_ops}")
    print(f"scalar : {s_stats.cycles} cycles")
    print(f"dyser  : {d_stats.cycles} cycles "
          f"({s_stats.cycles / d_stats.cycles:.2f}x)")

    for label, stats, present in (("scalar", s_stats, False),
                                  ("dyser", d_stats, True)):
        report = EnergyModel(
            EnergyParams(dyser_present=present)).account(stats)
        print(f"{label:>6}: {report.total_j * 1e3:.3f} mJ, "
              f"{report.avg_power_mw:.0f} mW avg "
              f"(dyser block {report.dyser_power_mw:.0f} mW)")


if __name__ == "__main__":
    main()
